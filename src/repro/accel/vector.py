"""Numpy implementations of the accel kernels.

Each kernel reproduces :mod:`repro.accel.pure` exactly -- same clean
verdicts, same returned values -- over :class:`repro.grid.table.WireTable`
arrays; the parity suite compares the two backends over the zoo and
fuzz-corpus layouts, corrupted clones included.  See the pure module's
docstring for the verdict semantics (conservative suspicion, scalar
fallback).

The sweep kernels share one trick: a *segmented running maximum*.
After sorting rows so one group (grid line, planar point, ...) is
contiguous and the in-group order is ascending ``lo``, offset each
``hi`` by ``group_id * span`` (``span`` > the global ``hi`` range), take
a plain ``np.maximum.accumulate``, and subtract the offset back.  The
offset makes every value in group ``g`` larger than anything in earlier
groups, so the running max restricted to a group's prefix never leaks
across the boundary; masking the first row of each group then yields
"max hi among my group's earlier rows" for every row at C speed.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.accel._common import INF, edge_weights

__all__ = [
    "edge_sweep",
    "self_consistency_clean",
    "layer_budget_clean",
    "parity_clean",
    "bend_clean",
    "via_clean",
    "node_overlap_clean",
    "node_sweep_clean",
    "pins_clean",
    "wire_extents",
    "cut_profile",
    "cutwidth_dp",
    "classify_bucket",
]


def _a(arr):
    """The table array as an ndarray (no copy on the numpy path)."""
    return np.asarray(arr)


def _prev_group_max(values, new_group):
    """Per row: max of ``values`` over *earlier* rows of its group.

    ``new_group`` marks each group's first row; rows where it is set
    get a value below any real one (the caller masks them anyway).
    """
    gid = np.cumsum(new_group) - 1
    base = int(values.min())
    span = int(values.max()) - base + 1
    adj = (values - base) + gid * span
    run = np.empty_like(adj)
    np.maximum.accumulate(adj, out=run)
    prev = np.empty_like(run)
    prev[0] = 0
    prev[1:] = run[:-1]
    out = prev - gid * span + base
    # First-of-group rows carry garbage from the previous group; push
    # them to an absolute floor so no comparison can fire.  (``base - 1``
    # is NOT low enough: callers compare against *other* columns -- a
    # span's lo sits below the smallest hi on legal layouts.)
    out[new_group] = -INF
    return out


# ---------------------------------------------------------------------------
# Validator kernels


def edge_sweep(table) -> tuple[int, bool]:
    """``(total_segments, clean)`` for edge-disjointness (exact)."""
    S = table.num_segments
    if S == 0:
        return 0, True
    x1, y1 = _a(table.seg_x1), _a(table.seg_y1)
    x2, y2 = _a(table.seg_x2), _a(table.seg_y2)
    lay = _a(table.seg_layer)
    horiz = y1 == y2
    coord = np.where(horiz, y1, x1)
    lo = np.where(horiz, x1, y1)
    hi = np.where(horiz, x2, y2)
    hcode = horiz.astype(np.int64)
    order = np.lexsort((lo, coord, lay, hcode))
    glo = lo[order]
    ghi = hi[order]
    gh, gl, gc = hcode[order], lay[order], coord[order]
    new_group = np.empty(S, dtype=bool)
    new_group[0] = True
    new_group[1:] = (
        (gh[1:] != gh[:-1]) | (gl[1:] != gl[:-1]) | (gc[1:] != gc[:-1])
    )
    prev_hi = _prev_group_max(ghi, new_group)
    conflict = glo < prev_hi
    return S, not bool(conflict.any())


def self_consistency_clean(table) -> bool:
    S = table.num_segments
    if S < 2:
        return True
    counts = np.diff(_a(table.wire_seg_start))
    rep = np.repeat(np.arange(table.num_wires), counts)
    lay = _a(table.seg_layer)
    horiz = _a(table.seg_y1) == _a(table.seg_y2)
    bad = (
        (rep[1:] == rep[:-1])
        & (lay[1:] == lay[:-1])
        & (horiz[1:] == horiz[:-1])
    )
    return not bool(bad.any())


def layer_budget_clean(table, layers: int) -> bool:
    if table.num_segments:
        lay = _a(table.seg_layer)
        if int(lay.min()) < 1 or int(lay.max()) > layers:
            return False
    riser = _a(table.wire_is_riser).astype(bool)
    if riser.any():
        zi = _a(table.wire_zrun_start)[:-1][riser]
        if int(_a(table.zrun_lo)[zi].min()) < 1:
            return False
        if int(_a(table.zrun_hi)[zi].max()) > layers:
            return False
    return True


def parity_clean(table) -> bool:
    if table.num_segments == 0:
        return True
    horiz = _a(table.seg_y1) == _a(table.seg_y2)
    odd = _a(table.seg_layer) % 2 == 1
    return bool((horiz == odd).all())


def bend_clean(table) -> bool:
    """Wire-blind bend/via exclusivity (conservative, see pure)."""
    px_parts = []
    py_parts = []
    lo_parts = []
    hi_parts = []
    S = table.num_segments
    if S >= 2:
        counts = np.diff(_a(table.wire_seg_start))
        rep = np.repeat(np.arange(table.num_wires), counts)
        idx = np.flatnonzero(rep[:-1] == rep[1:])
        if idx.size:
            rev = _a(table.seg_rev)[idx].astype(bool)
            px_parts.append(
                np.where(rev, _a(table.seg_x1)[idx], _a(table.seg_x2)[idx])
            )
            py_parts.append(
                np.where(rev, _a(table.seg_y1)[idx], _a(table.seg_y2)[idx])
            )
            la = _a(table.seg_layer)[idx]
            lb = _a(table.seg_layer)[idx + 1]
            lo_parts.append(np.minimum(la, lb))
            hi_parts.append(np.maximum(la, lb))
    riser = _a(table.wire_is_riser).astype(bool)
    if riser.any():
        zi = _a(table.wire_zrun_start)[:-1][riser]
        px_parts.append(_a(table.zrun_x)[zi])
        py_parts.append(_a(table.zrun_y)[zi])
        lo_parts.append(_a(table.zrun_lo)[zi])
        hi_parts.append(_a(table.zrun_hi)[zi])
    if not px_parts:
        return True
    px = np.concatenate(px_parts)
    py = np.concatenate(py_parts)
    plo = np.concatenate(lo_parts)
    phi = np.concatenate(hi_parts)
    n = len(px)
    if n < 2:
        return True
    order = np.lexsort((plo, py, px))
    spx, spy = px[order], py[order]
    slo, shi = plo[order], phi[order]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = (spx[1:] != spx[:-1]) | (spy[1:] != spy[:-1])
    prev_hi = _prev_group_max(shi, new_group)
    # Inclusive interval overlap: sorted ascending by lo within a
    # point, a row conflicts iff its lo <= some earlier row's hi.
    conflict = slo <= prev_hi
    return not bool(conflict.any())


def via_clean(table) -> bool:
    """Wire-aware via-piercing check (exact, mirrors pure.via_clean).

    The common case -- no z-run spanning an interior layer -- exits
    after one vectorized scan; otherwise the few interior-layer
    segments are indexed and probed exactly like the scalar check.
    """
    Z = table.num_zruns
    if Z == 0:
        return True
    zlo, zhi = _a(table.zrun_lo), _a(table.zrun_hi)
    big = (zhi - zlo) >= 2
    if not bool(big.any()):
        return True
    zcounts = np.diff(_a(table.wire_zrun_start))
    zwire = np.repeat(np.arange(table.num_wires), zcounts)
    bz = np.flatnonzero(big)
    runs = list(zip(
        zwire[bz].tolist(), _a(table.zrun_x)[bz].tolist(),
        _a(table.zrun_y)[bz].tolist(), zlo[bz].tolist(), zhi[bz].tolist(),
    ))
    interior: set[int] = set()
    for _, _, _, lo, hi in runs:
        interior.update(range(lo + 1, hi))

    lay = _a(table.seg_layer)
    smask = np.isin(lay, np.fromiter(interior, dtype=np.int64))
    lines: dict[tuple, list[tuple[int, int, int]]] = {}
    if bool(smask.any()):
        si = np.flatnonzero(smask)
        counts = np.diff(_a(table.wire_seg_start))
        srep = np.repeat(np.arange(table.num_wires), counts)
        x1, y1 = _a(table.seg_x1)[si], _a(table.seg_y1)[si]
        x2, y2 = _a(table.seg_x2)[si], _a(table.seg_y2)[si]
        sl = lay[si]
        sw = srep[si]
        horiz = y1 == y2
        for k in range(len(si)):
            if horiz[k]:
                key = (1, int(sl[k]), int(y1[k]))
                row = (int(x1[k]), int(x2[k]), int(sw[k]))
            else:
                key = (0, int(sl[k]), int(x1[k]))
                row = (int(y1[k]), int(y2[k]), int(sw[k]))
            b = lines.get(key)
            if b is None:
                lines[key] = [row]
            else:
                b.append(row)
    index: dict[tuple, tuple[list[int], list[int]]] = {}
    for key, spans in lines.items():
        spans.sort()
        prefix_max_hi: list[int] = []
        top = spans[0][1]
        for _, hi, _ in spans:
            if hi > top:
                top = hi
            prefix_max_hi.append(top)
        index[key] = ([lo for lo, _, _ in spans], prefix_max_hi)

    def covered(key, coord, self_wire) -> bool:
        spans = lines.get(key)
        if not spans:
            return False
        los, prefix_max_hi = index[key]
        i = bisect_right(los, coord) - 1
        while i >= 0 and prefix_max_hi[i] > coord:
            lo, hi, owner = spans[i]
            if lo < coord < hi and owner != self_wire:
                return True
            i -= 1
        return False

    for owner, x, y, lo, hi in runs:
        for layer in range(lo + 1, hi):
            if covered((1, layer, y), x, owner):
                return False
            if covered((0, layer, x), y, owner):
                return False
    return True


def node_overlap_clean(table) -> bool:
    """Positive-area node rects are interior-disjoint (see pure).

    One lexsort puts each (layer, y-extent) band's rects in ascending
    ``x0``; an adjacent-row compare then decides within-band overlap
    exactly, and the segmented running max flags any pair of bands
    whose y-extents meet on a shared layer as suspicious.
    """
    if len(table.node_x0) == 0:
        return True
    nx0, ny0 = _a(table.node_x0), _a(table.node_y0)
    nx1, ny1 = _a(table.node_x1), _a(table.node_y1)
    nlay = _a(table.node_layer)
    pos = (nx1 > nx0) & (ny1 > ny0)
    if not bool(pos.any()):
        return True
    order = np.lexsort((nx0[pos], ny1[pos], ny0[pos], nlay[pos]))
    x0s, x1s = nx0[pos][order], nx1[pos][order]
    y0s, y1s = ny0[pos][order], ny1[pos][order]
    lays = nlay[pos][order]
    same_band = (
        (lays[1:] == lays[:-1])
        & (y0s[1:] == y0s[:-1])
        & (y1s[1:] == y1s[:-1])
    )
    if bool((same_band & (x0s[1:] < x1s[:-1])).any()):
        return False
    first = np.ones(len(order), dtype=bool)
    first[1:] = ~same_band
    band_lay = lays[first]
    band_y0, band_y1 = y0s[first], y1s[first]
    new_layer = np.ones(len(band_lay), dtype=bool)
    new_layer[1:] = band_lay[1:] != band_lay[:-1]
    prev_y1 = _prev_group_max(band_y1, new_layer)
    return not bool((band_y0 < prev_y1).any())


def node_sweep_clean(table) -> bool:
    """Band-candidate node-interior crossing check (see pure)."""
    S = table.num_segments
    if S == 0 or len(table.node_x0) == 0:
        return True
    nx0, ny0 = _a(table.node_x0), _a(table.node_y0)
    nx1, ny1 = _a(table.node_x1), _a(table.node_y1)
    nlay = _a(table.node_layer)
    pos = (nx1 > nx0) & (ny1 > ny0)
    if not bool(pos.any()):
        return True
    bands: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
    for r in np.flatnonzero(pos).tolist():
        key = (int(nlay[r]), int(ny0[r]), int(ny1[r]))
        b = bands.get(key)
        if b is None:
            bands[key] = [(int(nx0[r]), int(nx1[r]))]
        else:
            b.append((int(nx0[r]), int(nx1[r])))
    by_layer: dict[int, list] = {}
    for (layer, y0, y1), rects in bands.items():
        rects.sort()
        by_layer.setdefault(layer, []).append((
            y0, y1,
            np.asarray([x0 for x0, _ in rects], dtype=np.int64),
            np.asarray([x1 for _, x1 in rects], dtype=np.int64),
        ))

    lay = _a(table.seg_layer)
    sy_lo, sy_hi = _a(table.seg_y1), _a(table.seg_y2)
    sx_lo, sx_hi = _a(table.seg_x1), _a(table.seg_x2)
    order = np.argsort(lay, kind="stable")
    slay = lay[order]
    for layer, layer_bands in by_layer.items():
        a = np.searchsorted(slay, layer, side="left")
        b = np.searchsorted(slay, layer, side="right")
        if a == b:
            continue
        rows = order[a:b]
        qy_lo, qy_hi = sy_lo[rows], sy_hi[rows]
        qx_lo, qx_hi = sx_lo[rows], sx_hi[rows]
        for y0, y1, xs0, xs1 in layer_bands:
            m = (qy_hi > y0) & (qy_lo < y1)
            if not bool(m.any()):
                continue
            idx = np.searchsorted(xs0, qx_hi[m], side="left") - 1
            valid = idx >= 0
            if not bool(valid.any()):
                continue
            cand_x1 = xs1[np.maximum(idx, 0)]
            if bool((valid & (cand_x1 > qx_lo[m])).any()):
                return False
    return True


def pins_clean(table, u_rows, v_rows) -> bool:
    """Perimeter pin attachment + unique pin points (exact)."""
    W = table.num_wires
    if W == 0:
        return True
    ur = np.asarray(u_rows, dtype=np.int64)
    vr = np.asarray(v_rows, dtype=np.int64)
    sx, sy, ex, ey = (np.asarray(a) for a in table.wire_endpoints())
    nx0, ny0 = _a(table.node_x0), _a(table.node_y0)
    nx1, ny1 = _a(table.node_x1), _a(table.node_y1)

    def perim(px, py, rows):
        x0, y0 = nx0[rows], ny0[rows]
        x1, y1 = nx1[rows], ny1[rows]
        inside = (x0 <= px) & (px <= x1) & (y0 <= py) & (py <= y1)
        strict = (x0 < px) & (px < x1) & (y0 < py) & (py < y1)
        return inside & ~strict

    p1 = perim(sx, sy, ur) & perim(ex, ey, vr)
    p2 = perim(ex, ey, ur) & perim(sx, sy, vr)
    if not bool((p1 | p2).all()):
        return False
    # The scalar check prefers the (u<-start, v<-end) pairing; mirror
    # that choice so claimed pin points match it exactly.
    ax = np.where(p1, sx, ex)
    ay = np.where(p1, sy, ey)
    bx = np.where(p1, ex, sx)
    by = np.where(p1, ey, sy)
    nodes = np.concatenate((ur, vr))
    px = np.concatenate((ax, bx))
    py = np.concatenate((ay, by))
    wi = np.concatenate((np.arange(W), np.arange(W)))
    order = np.lexsort((wi, py, px, nodes))
    sn, spx, spy, sw = nodes[order], px[order], py[order], wi[order]
    same = (
        (sn[1:] == sn[:-1]) & (spx[1:] == spx[:-1]) & (spy[1:] == spy[:-1])
    )
    return not bool((same & (sw[1:] != sw[:-1])).any())


def wire_extents(table):
    """Per-wire ``(ymin, ymax, lmin, lmax)`` lists (see pure)."""
    W = table.num_wires
    if W == 0:
        return [], [], [], []
    ymin = np.zeros(W, dtype=np.int64)
    ymax = np.zeros(W, dtype=np.int64)
    lmin = np.zeros(W, dtype=np.int64)
    lmax = np.zeros(W, dtype=np.int64)
    starts = _a(table.wire_seg_start)
    counts = np.diff(starts)
    nonempty = counts > 0
    if bool(nonempty.any()):
        # Risers have empty segment ranges; reduceat over only the
        # non-empty starts keeps every group's slice exact (consecutive
        # non-empty wires are adjacent in the segment arrays).
        ne_idx = starts[:-1][nonempty]
        ymin[nonempty] = np.minimum.reduceat(_a(table.seg_y1), ne_idx)
        ymax[nonempty] = np.maximum.reduceat(_a(table.seg_y2), ne_idx)
        lmin[nonempty] = np.minimum.reduceat(_a(table.seg_layer), ne_idx)
        lmax[nonempty] = np.maximum.reduceat(_a(table.seg_layer), ne_idx)
    riser = _a(table.wire_is_riser).astype(bool)
    if riser.any():
        zi = _a(table.wire_zrun_start)[:-1][riser]
        ymin[riser] = _a(table.zrun_y)[zi]
        ymax[riser] = _a(table.zrun_y)[zi]
        lmin[riser] = _a(table.zrun_lo)[zi]
        lmax[riser] = _a(table.zrun_hi)[zi]
    return ymin.tolist(), ymax.tolist(), lmin.tolist(), lmax.tolist()


# ---------------------------------------------------------------------------
# Cutwidth kernels


def cut_profile(n: int, pairs) -> int:
    """Max prefix-gap cut (difference array, vectorized)."""
    if n == 0 or not pairs:
        return 0
    arr = np.asarray(pairs, dtype=np.int64)
    diff = (
        np.bincount(arr[:, 0], minlength=n + 1)
        - np.bincount(arr[:, 1], minlength=n + 1)
    )
    running = np.cumsum(diff[:n])
    best = int(running.max())
    return best if best > 0 else 0


def cutwidth_dp(network, n: int):
    """Vectorized DP: popcount layers, gather-min over bit removals.

    ``dp`` at popcount k depends only on popcount k-1, so each layer is
    one fancy-indexed gather per bit position -- O(2^n n) element ops
    all at C speed instead of an interpreted inner loop.
    """
    size = 1 << n
    states = np.arange(size, dtype=np.int64)
    cut = np.zeros(size, dtype=np.int64)
    for (iu, iv), wt in edge_weights(network).items():
        differs = ((states >> iu) ^ (states >> iv)) & 1
        cut += wt * differs
    pc = np.zeros(size, dtype=np.int64)
    for u in range(n):
        pc += (states >> u) & 1
    order = np.argsort(pc, kind="stable")
    bounds = np.searchsorted(pc[order], np.arange(n + 2))
    dp = np.zeros(size, dtype=np.int64)
    for k in range(1, n + 1):
        layer = order[bounds[k]:bounds[k + 1]]
        best = np.full(len(layer), INF, dtype=np.int64)
        for u in range(n):
            bit = 1 << u
            has = (layer & bit) != 0
            if not has.any():
                continue
            members = layer[has]
            best[has] = np.minimum(best[has], dp[members ^ bit])
        dp[layer] = np.maximum(cut[layer], best)
    return dp, cut


# ---------------------------------------------------------------------------
# Fast-engine kernel


def classify_bucket(movers_raw, hop, t_now, tail, nhops, route_start, flat, starts):
    """Batch bucket classification for the fast engine (see pure).

    The array arguments (``nhops``, ``route_start``, ``flat``,
    ``starts``) must be int64 ndarrays; ``movers_raw`` and ``hop`` are
    plain python lists (mutable engine state).
    """
    nmv = len(movers_raw)
    mv = np.asarray(movers_raw, dtype=np.int64)
    h = np.fromiter((hop[i] for i in movers_raw), np.int64, count=nmv)
    arr_mask = h >= nhops[mv]
    n_done = 0
    top = 0
    done_lats: list[int] = []
    if arr_mask.any():
        arr = mv[arr_mask]
        tails = np.where(nhops[arr] > 0, tail, 0)
        done = t_now + tails
        top = int(done.max())
        done_lats = (done - starts[arr]).tolist()
        n_done = int(arr.size)
    groups: list[tuple[int, list[int]]] = []
    movers = mv[~arr_mask]
    if movers.size:
        ml = flat[route_start[movers] + h[~arr_mask]]
        order = np.argsort(ml, kind="stable")
        sl = ml[order]
        sm = movers[order].tolist()
        n = len(sm)
        is_first = np.empty(n, dtype=bool)
        is_first[0] = True
        is_first[1:] = sl[1:] != sl[:-1]
        gs = np.flatnonzero(is_first)
        ge = np.append(gs[1:], n)
        for a0, b0 in zip(gs.tolist(), ge.tolist()):
            groups.append((int(sl[a0]), sm[a0:b0]))
    return n_done, top, done_lats, groups
