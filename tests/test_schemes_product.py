"""Scheme-level tests for product families: exact channel structure.

The rigorous content of Sections 3.1, 4.1, 5.1 at finite sizes is the
per-channel track arithmetic: each row of the k-ary n-cube layout is a
collinear k-ary floor(n/2)-cube (f_k tracks), each column a k-ary
ceil(n/2)-cube, and under L layers each channel's physical extent is
ceil(tracks / floor(L/2)).  These tests assert those counts exactly,
then check the full legality + topology of the routed result.
"""

import pytest

from conftest import assert_layout_ok
from repro.collinear.formulas import hypercube_tracks, kary_tracks, mixed_radix_ghc_tracks
from repro.core import (
    layout_complete,
    layout_ghc,
    layout_hypercube,
    layout_kary,
    layout_product,
)
from repro.topology import (
    CompleteGraph,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
    Mesh,
    ProductNetwork,
    Ring,
)


class TestKAryChannels:
    @pytest.mark.parametrize("k,n", [(3, 2), (4, 2), (3, 3), (3, 4), (5, 2)])
    def test_row_tracks_match_formula(self, k, n):
        lay = layout_kary(k, n)
        lo = n // 2  # digits per row subnetwork
        expect_row = kary_tracks(k, lo) if lo else 0
        assert all(t == expect_row for t in lay.meta["row_tracks"])
        hi = n - lo
        expect_col = kary_tracks(k, hi)
        assert all(t == expect_col for t in lay.meta["col_tracks"])

    @pytest.mark.parametrize("k,n", [(3, 2), (4, 2), (3, 3)])
    @pytest.mark.parametrize("L", [2, 3, 4, 6, 8])
    def test_channel_extent_is_ceiling(self, k, n, L):
        lay = layout_kary(k, n, layers=L)
        G = max(L // 2, 1)
        lo = n // 2
        expect = -(-kary_tracks(k, lo) // G) if lo else 0
        assert all(e == expect for e in lay.meta["row_channel_extents"])

    @pytest.mark.parametrize("k,n,L", [(3, 2, 2), (3, 2, 4), (4, 2, 4), (3, 3, 6)])
    def test_valid_and_topologically_exact(self, k, n, L):
        lay = layout_kary(k, n, layers=L)
        assert_layout_ok(lay, KAryNCube(k, n))

    def test_mesh_variant(self):
        lay = layout_kary(4, 2, wraparound=False)
        assert_layout_ok(lay, Mesh(4, 2))
        # Mesh rows are paths: 1 track each.
        assert all(t == 1 for t in lay.meta["row_tracks"])

    def test_folded_variant_shortens_wires(self):
        plain = layout_kary(8, 2)
        folded = layout_kary(8, 2, folded=True)
        assert_layout_ok(folded, KAryNCube(8, 2))
        assert folded.max_wire_length() < plain.max_wire_length()
        # Track counts (hence area) unchanged by folding.
        assert folded.meta["row_tracks"] == plain.meta["row_tracks"]

    def test_area_decreases_with_layers(self):
        # Rows of the 3-ary 4-cube have f_3(2) = 8 tracks: the per-layer
        # extents under L = 2, 4, 8 are 8, 4, 2 -- strictly shrinking.
        areas = [layout_kary(3, 4, layers=L).area for L in (2, 4, 8)]
        assert areas[0] > areas[1] > areas[2]


class TestHypercubeChannels:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8])
    def test_row_tracks_match_formula(self, n):
        lay = layout_hypercube(n)
        lo = n // 2
        expect_row = hypercube_tracks(lo) if lo else 0
        assert all(t == expect_row for t in lay.meta["row_tracks"])
        expect_col = hypercube_tracks(n - lo)
        assert all(t == expect_col for t in lay.meta["col_tracks"])

    @pytest.mark.parametrize("n,L", [(4, 2), (4, 4), (5, 3), (6, 8)])
    def test_valid_and_exact(self, n, L):
        lay = layout_hypercube(n, layers=L)
        assert_layout_ok(lay, Hypercube(n))

    def test_max_wire_scales_down_with_layers(self):
        w2 = layout_hypercube(8, layers=2).max_wire_length()
        w8 = layout_hypercube(8, layers=8).max_wire_length()
        assert w8 < w2

    def test_odd_layers_match_even_minus_one(self):
        """Odd L uses floor(L/2) groups: the geometry equals L-1."""
        a = layout_hypercube(6, layers=5)
        b = layout_hypercube(6, layers=4)
        assert a.area == b.area
        assert a.volume == b.area * 5


class TestGHCChannels:
    @pytest.mark.parametrize("radices", [(3, 3), (4, 4), (3, 4, 3)])
    def test_tracks_at_most_recurrence(self, radices):
        """Left-edge packing may beat the paper's stacked construction;
        never exceeds it."""
        lay = layout_ghc(radices)
        n = len(radices)
        m = n // 2
        lo = radices[n - m:]
        hi = radices[:n - m]
        assert all(
            t <= mixed_radix_ghc_tracks(lo) for t in lay.meta["row_tracks"]
        )
        assert all(
            t <= mixed_radix_ghc_tracks(hi) for t in lay.meta["col_tracks"]
        )

    def test_radix3_exact(self):
        lay = layout_ghc((3, 3))
        assert all(t == 2 for t in lay.meta["row_tracks"])  # |9/4| = 2

    @pytest.mark.parametrize("radices,L", [((3, 3), 2), ((4, 4), 4), ((3, 4), 3)])
    def test_valid_and_exact(self, radices, L):
        lay = layout_ghc(radices, layers=L)
        assert_layout_ok(lay, GeneralizedHypercube(radices))

    def test_split_parameter(self):
        lay = layout_ghc((3, 3, 3), split=1)
        assert lay.meta["cols"] == 3
        assert lay.meta["rows"] == 9
        assert_layout_ok(lay, GeneralizedHypercube((3, 3, 3)))


class TestCompleteAndProduct:
    def test_k9_has_twenty_tracks(self):
        lay = layout_complete(9)
        assert lay.meta["row_tracks"] == [20]
        assert_layout_ok(lay, CompleteGraph(9))

    def test_product_of_rings(self):
        a, b = Ring(4), Ring(5)
        lay = layout_product(a, b)
        assert_layout_ok(lay, ProductNetwork(a, b))
        assert all(t == 2 for t in lay.meta["row_tracks"])
        assert all(t == 2 for t in lay.meta["col_tracks"])

    def test_product_ring_by_complete(self):
        a, b = CompleteGraph(4), Ring(5)
        lay = layout_product(a, b)
        assert_layout_ok(lay, ProductNetwork(a, b))
        assert all(t == 4 for t in lay.meta["row_tracks"])  # |16/4|


class TestScalability:
    """Section 3.2's claim: node squares can grow without changing the
    channel structure (only the cell pitch)."""

    def test_tracks_independent_of_node_side(self):
        small = layout_kary(3, 2, node_side=4)
        big = layout_kary(3, 2, node_side=12)
        assert small.meta["row_tracks"] == big.meta["row_tracks"]
        assert small.meta["col_tracks"] == big.meta["col_tracks"]

    def test_area_grows_with_node_side(self):
        small = layout_kary(3, 2, node_side=4)
        big = layout_kary(3, 2, node_side=12)
        assert big.area > small.area

    def test_big_nodes_still_valid(self):
        lay = layout_hypercube(4, node_side=20)
        assert_layout_ok(lay, Hypercube(4))

    def test_node_side_below_degree_fails_cleanly(self):
        with pytest.raises(ValueError, match="node_side"):
            layout_complete(8, node_side=2)
