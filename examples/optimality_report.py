#!/usr/bin/env python
"""Optimality report: how close are the layouts to the lower bounds?

The abstract claims the layouts are "optimal within a small constant
factor".  This script makes that concrete on your machine:

* collinear layouts vs the *exact* cutwidth (DP over subsets) -- where
  the paper's counts are provably optimal, and where the left-edge
  engine beats the paper's recurrence (GHC radix >= 4);
* 2-D layouts vs the bisection lower bound area >= (B/L)^2.

Run:  python examples/optimality_report.py
"""

from repro import (
    CompleteGraph,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
    bisection_formula,
    layout_ghc,
    layout_hypercube,
    layout_kary,
    measure,
    optimality_factor,
)
from repro.bench import print_table
from repro.collinear import (
    collinear_layout,
    complete_graph_tracks,
    hypercube_tracks,
    kary_tracks,
)
from repro.collinear.cutwidth import exact_cutwidth
from repro.collinear.formulas import mixed_radix_ghc_tracks
from repro.collinear.orders import binary_order, mixed_radix_order
from repro.collinear.recursions import ghc_construction_order


def collinear_report() -> None:
    rows = []
    cases = [
        ("K7", CompleteGraph(7), None, complete_graph_tracks(7)),
        ("4-cube", Hypercube(4), binary_order(4), hypercube_tracks(4)),
        ("3-ary 2-cube", KAryNCube(3, 2), mixed_radix_order([3, 3]),
         kary_tracks(3, 2)),
        ("4-ary 2-cube", KAryNCube(4, 2), mixed_radix_order([4, 4]),
         kary_tracks(4, 2)),
        ("GHC(4,4)", GeneralizedHypercube((4, 4)),
         ghc_construction_order((4, 4)), mixed_radix_ghc_tracks((4, 4))),
    ]
    for name, net, order, paper in cases:
        lay = collinear_layout(net.nodes, net.edges, order)
        opt = exact_cutwidth(net)
        rows.append([
            name, paper, lay.num_tracks, opt,
            "paper exactly optimal" if paper == opt
            else f"engine optimal; paper +{paper - opt}",
        ])
    print_table(
        "collinear layouts vs exact cutwidth (DP certificate)",
        ["network", "paper tracks", "engine tracks", "true optimum",
         "verdict"],
        rows,
    )


def area_report() -> None:
    rows = []
    cases = [
        ("10-cube", lambda L: layout_hypercube(10, layers=L, node_side="min"),
         bisection_formula("hypercube", 10)),
        ("4-ary 4-cube", lambda L: layout_kary(4, 4, layers=L, node_side="min"),
         bisection_formula("kary", 4, 4)),
        ("GHC(8,8)", lambda L: layout_ghc((8, 8), layers=L, node_side="min"),
         bisection_formula("ghc", 8, 2)),
    ]
    for name, build, bis in cases:
        for L in (2, 4):
            m = measure(build(L))
            f = optimality_factor(m.area, bis, L)
            rows.append([name, L, bis, m.area, f"{f:.1f}",
                         f"{f ** 0.5:.2f}"])
    print_table(
        "2-D layouts vs the bisection bound area >= (B/L)^2",
        ["layout", "L", "B", "area", "area factor", "side factor"],
        rows,
    )


if __name__ == "__main__":
    collinear_report()
    area_report()
