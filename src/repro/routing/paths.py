"""Routing algorithms over the paper's networks and layouts.

Dimension-order (e-cube) routing is the standard deadlock-free router
for the digit networks the paper lays out: correct one digit at a time,
most significant first.  For arbitrary networks (or to exploit the
layout), :func:`shortest_hop_routes` and :func:`min_wire_routes` build
routing tables by BFS / Dijkstra.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.grid.layout import GridLayout
from repro.topology.base import Network
from repro.topology.ghc import GeneralizedHypercube
from repro.topology.hypercube import Hypercube
from repro.topology.kary import KAryNCube

__all__ = [
    "dimension_order_route",
    "shortest_hop_routes",
    "min_wire_routes",
    "layout_link_delays",
    "RoutingTable",
]

Node = Hashable


def dimension_order_route(network: Network, src: Node, dst: Node) -> list[Node]:
    """The e-cube route from ``src`` to ``dst``: fix digits from most
    significant down, moving monotonically within each dimension.

    Supports :class:`Hypercube`, :class:`KAryNCube` (torus: shortest
    way around each ring) and :class:`GeneralizedHypercube` (one hop
    per differing digit).  Returns the node sequence, inclusive.
    """
    if isinstance(network, Hypercube):
        path = [src]
        cur = src
        for bit in reversed(range(network.n)):
            if (cur ^ dst) >> bit & 1:
                cur ^= 1 << bit
                path.append(cur)
        return path
    if isinstance(network, GeneralizedHypercube):
        path = [src]
        cur = list(src)
        for i in range(network.n):
            if cur[i] != dst[i]:
                cur[i] = dst[i]
                path.append(tuple(cur))
        return path
    if isinstance(network, KAryNCube):
        k = network.k
        path = [src]
        cur = list(src)
        for i in range(network.n):
            a, b = cur[i], dst[i]
            if a == b:
                continue
            fwd = (b - a) % k
            back = (a - b) % k
            if network.wraparound and k > 2:
                step = 1 if fwd <= back else -1
            else:
                step = 1 if b > a else -1
            while cur[i] != b:
                cur[i] = (cur[i] + step) % k if network.wraparound else cur[i] + step
                path.append(tuple(cur))
        return path
    raise TypeError(
        f"dimension-order routing is undefined for {type(network).__name__}; "
        "use shortest_hop_routes"
    )


@dataclass(slots=True)
class RoutingTable:
    """All-pairs routes, stored as parent maps per destination."""

    network: Network
    parent: dict[Node, dict[Node, Node]] = field(default_factory=dict)

    def route(self, src: Node, dst: Node) -> list[Node]:
        """The stored route src -> dst (node sequence, inclusive)."""
        if src == dst:
            return [src]
        par = self.parent[dst]
        path = [src]
        cur = src
        while cur != dst:
            cur = par[cur]
            path.append(cur)
        return path


def shortest_hop_routes(
    network: Network,
    *,
    failed_links: set[tuple[Node, Node]] | None = None,
) -> RoutingTable:
    """BFS routing table: minimum hop count to every destination.

    ``failed_links`` removes edges (either orientation) before routing
    -- the fault-tolerance scenario networks like the folded hypercube
    (ref. [1]) exist for.  Unreachable pairs simply have no route; the
    table's ``route`` raises ``KeyError`` for them.
    """
    dead: set[frozenset] = set()
    if failed_links:
        dead = {frozenset(e) for e in failed_links}

    table = RoutingTable(network)
    for dst in network.nodes:
        nxt: dict[Node, Node] = {}
        dist = {dst: 0}
        queue = deque([dst])
        while queue:
            u = queue.popleft()
            for w in network.adjacency[u]:
                if dead and frozenset((u, w)) in dead:
                    continue
                if w not in dist:
                    dist[w] = dist[u] + 1
                    nxt[w] = u  # first hop from w toward dst
                    queue.append(w)
        table.parent[dst] = nxt
    return table


def layout_link_delays(
    layout: GridLayout, *, alpha: float = 1.0, base: float = 1.0
) -> dict[tuple[Node, Node], int]:
    """Per-link integer delays derived from routed wire lengths.

    delay = ceil(base + alpha * length); parallel wires keep the
    fastest.  Keys are ordered pairs in both directions.  The per-wire
    delays come from the layout's :class:`~repro.grid.table.WireTable`
    in one vectorized pass, so a simulator run's setup precomputes all
    link delays without walking any per-wire segment objects.
    """
    out: dict[tuple[Node, Node], int] = {}
    delays = layout.wire_table().link_delay_values(alpha=alpha, base=base)
    for w, d in zip(layout.wires, delays):
        for key in ((w.u, w.v), (w.v, w.u)):
            if key not in out or d < out[key]:
                out[key] = d
    return out


def min_wire_routes(network: Network, layout: GridLayout) -> RoutingTable:
    """Dijkstra routing table under layout wire-length link weights."""
    delays = layout_link_delays(layout)
    table = RoutingTable(network)
    for dst in network.nodes:
        nxt: dict[Node, Node] = {}
        dist: dict[Node, float] = {dst: 0.0}
        heap = [(0.0, 0, dst)]
        tie = 0
        while heap:
            d, _, u = heapq.heappop(heap)
            if d > dist.get(u, float("inf")):
                continue
            for w in network.adjacency[u]:
                nd = d + delays[(w, u)]
                if nd < dist.get(w, float("inf")):
                    dist[w] = nd
                    nxt[w] = u
                    tie += 1
                    heapq.heappush(heap, (nd, tie, w))
        table.parent[dst] = nxt
    return table
