"""Tests for the differential pipeline driver (repro.check.differential).

Includes the subsystem's acceptance test: deliberately breaking the
fast validator (disabling its edge-disjointness sweep for the duration
of one test) must make the fuzzer report ``validator-oracle``
disagreements, and the shrinker must reduce one to a tiny network.
"""

import pytest

from repro.check.differential import (
    STAGES,
    CheckResult,
    build_scheme_layout,
    check_case,
    run_fuzz,
)
from repro.check.generate import CheckCase, generate_cases
from repro.check.shrink import shrink_failing_case
from repro.topology import Hypercube, StarGraph
from repro.topology.base import build_network


def _case(net, kind="random", seed=11, layers=(2, 4)):
    return CheckCase(
        case_id=f"test/{net.name}", seed=seed, kind=kind,
        network=net, layers=layers,
    )


class TestCheckCase:
    def test_clean_network_passes_all_stages(self):
        res = check_case(_case(Hypercube(3)))
        assert res.ok, [str(v) for v in res.violations]
        assert res.stages_run == list(STAGES)

    def test_stage_restriction(self):
        res = check_case(_case(Hypercube(3)), stages=("collinear",))
        assert res.stages_run == ["collinear"]
        assert res.ok

    def test_zoo_kind_uses_family_scheme(self):
        case = _case(StarGraph(4), kind="zoo")
        lay = build_scheme_layout(case, 4)
        assert len(lay.wires) == case.network.num_edges
        assert check_case(case).ok

    def test_cutwidth_skipped_above_limit(self):
        res = check_case(
            _case(Hypercube(4)), stages=("collinear", "cutwidth"),
            exact_limit=8,
        )
        assert "cutwidth" in res.skipped
        assert res.ok

    def test_stage_crash_is_recorded_not_raised(self, monkeypatch):
        def boom(*a, **k):
            raise RuntimeError("synthetic stage crash")

        monkeypatch.setattr(
            "repro.check.differential.collinear_layout", boom
        )
        res = check_case(_case(Hypercube(3)), stages=("collinear",))
        assert not res.ok
        assert res.violations[0].invariant == "pipeline-crash"
        assert "synthetic stage crash" in res.violations[0].detail


class TestRunFuzz:
    def test_small_sweep_clean(self):
        rep = run_fuzz(seed=1, budget=18)
        assert rep.ok
        assert rep.cases_run == 18
        assert sum(rep.kind_counts.values()) == 18
        assert rep.stage_counts["collinear"] == 18
        assert rep.violations == 0

    def test_max_failures_stops_early(self, monkeypatch):
        def always_fail(case, **kw):
            res = CheckResult(case=case)
            res.add("synthetic", "collinear", "forced failure")
            res.stages_run.append("collinear")
            return res

        monkeypatch.setattr(
            "repro.check.differential.check_case", always_fail
        )
        rep = run_fuzz(seed=0, budget=50, max_failures=3)
        assert len(rep.failures) == 3
        assert rep.cases_run == 3
        assert not rep.ok


class TestInjectedBug:
    """The acceptance criterion: a deliberately injected soundness hole
    in the fast validator is caught by the agreement invariant and
    shrunk to a minimal counterexample."""

    @pytest.fixture()
    def broken_validator(self, monkeypatch):
        # The bug: the fast validator silently skips its
        # edge-disjointness sweep, so overlapping wires are accepted
        # while the brute-force oracle still rejects them.
        monkeypatch.setattr(
            "repro.grid.validate._check_edge_disjointness",
            lambda layout: 0,
        )

    def test_fuzzer_catches_and_shrinker_minimizes(self, broken_validator):
        rep = run_fuzz(
            seed=0, budget=60, stages=("agreement",),
            mutation_rounds=6, max_failures=3,
        )
        assert not rep.ok, "injected validator bug went undetected"
        assert any(
            v.invariant == "validator-oracle"
            for res in rep.failures
            for v in res.violations
        )
        small = shrink_failing_case(rep.failures[0], mutation_rounds=12)
        assert small.num_nodes <= 6
        assert small.num_edges >= 1
        assert small.is_connected()


class TestTrafficStage:
    """The engine-parity differential stage."""

    def test_clean_engine_agrees(self):
        res = check_case(_case(Hypercube(3)), stages=("traffic",))
        assert res.ok, [str(v) for v in res.violations]
        assert res.stages_run == ["traffic"]

    def test_uses_layout_delays_when_available(self):
        # orthogonal first so the traffic stage picks up the routed
        # layout's per-link delays instead of unit delays.
        res = check_case(_case(Hypercube(3)), stages=("orthogonal", "traffic"))
        assert res.ok, [str(v) for v in res.violations]

    def test_injected_engine_bug_is_caught_and_shrunk(self, monkeypatch):
        import dataclasses

        from repro.check import differential as diff

        real = diff.simulate_fast

        def skewed(net, msgs, **kw):
            r = real(net, msgs, **kw)
            return dataclasses.replace(r, makespan=r.makespan + 1)

        monkeypatch.setattr(
            "repro.check.differential.simulate_fast", skewed
        )
        res = check_case(_case(Hypercube(3)), stages=("traffic",))
        assert not res.ok
        assert {v.invariant for v in res.violations} == {"engine-parity"}
        assert "makespan" in res.violations[0].detail
        small = shrink_failing_case(res)
        assert small.num_nodes <= 4
        assert small.is_connected()


class TestInvariantSensitivity:
    """Each stage actually fires on hand-built degenerate inputs."""

    def test_two_node_network(self):
        net = build_network([0, 1], [(0, 1)], "k2")
        res = check_case(_case(net))
        assert res.ok, [str(v) for v in res.violations]

    def test_dense_network(self):
        nodes = list(range(6))
        edges = [(i, j) for i in nodes for j in nodes if i < j]
        res = check_case(_case(build_network(nodes, edges, "k6")))
        assert res.ok, [str(v) for v in res.violations]

    def test_replay_stream_case(self):
        case = next(iter(generate_cases(3, 1)))
        res = check_case(case)
        assert res.ok, [str(v) for v in res.violations]
