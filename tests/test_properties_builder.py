"""Property-based tests of the full layout pipeline.

Random grids, random links (row/column/extra), random layer budgets:
every generated spec must route into a layout that passes the
multilayer grid model validator and reproduces its edge multiset.
This is the strongest guarantee in the suite -- the builder's
structural-legality argument, exercised adversarially.
"""

from hypothesis import given, settings
from strategies import block_specs, grid_specs

from repro.core.builder import build_orthogonal_layout
from repro.grid.validate import check_topology, validate_layout


class TestRandomSpecs:
    @given(grid_specs())
    @settings(max_examples=120, deadline=None)
    def test_always_legal(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay)
        expected = [
            (l.u_node, l.v_node) for l in spec.all_links()
        ]
        check_topology(lay, expected)

    @given(grid_specs())
    @settings(max_examples=60, deadline=None)
    def test_layer_budget_respected(self, spec):
        lay = build_orthogonal_layout(spec)
        assert all(
            1 <= s.layer <= spec.layers
            for w in lay.wires
            for s in w.segments
        )

    @given(grid_specs())
    @settings(max_examples=60, deadline=None)
    def test_parity_convention(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay, check_parity=True)


class TestRandomBlockSpecs:
    @given(block_specs())
    @settings(max_examples=80, deadline=None)
    def test_always_legal(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay)

    @given(block_specs())
    @settings(max_examples=40, deadline=None)
    def test_edge_multiset_preserved(self, spec):
        lay = build_orthogonal_layout(spec)
        expected = [(l.u_node, l.v_node) for l in spec.row_links]
        for pos, cell in spec.cells.items():
            expected.extend(cell.edges)
        check_topology(lay, expected)
