"""The layout daemon: asyncio HTTP/JSON server over the sweep engine.

``python -m repro serve`` binds this server.  A request names a
``(network, scheme, layers)`` tuple -- the same coordinates a sweep
job has -- and the answer is that job's metrics (optionally the
layout itself).  Three layers between socket and build keep the
daemon well-behaved under load:

1. **Admission** -- an optional global in-flight cap answers 503
   immediately past saturation, and per-client token buckets (keyed
   by the ``X-Repro-Client`` header) answer 429 with ``Retry-After``
   when a client outruns its quota.  A sweep request costs one token
   per expanded job.
2. **Coalescing** -- concurrent requests for the same cold key share
   one build: the first starts an ``asyncio.Task``, followers await a
   ``shield`` of it and report ``source: "coalesced"``.  Duplicate
   work is impossible by construction *within* the daemon, and the
   thread-level single-flight in
   :meth:`~repro.batch.cache.LayoutCache.get_or_build` covers racing
   builders elsewhere on the machine.
3. **The pool** -- cache misses run on long-lived worker processes
   (:class:`~repro.serve.pool.WorkerPool`); the event loop never
   blocks on a build.  Warm keys are answered straight from the
   content-addressed cache without touching the pool.

Every request lands in :mod:`repro.obs`: ``serve.*`` counters, a
``serve.request_ms`` histogram, and the standard Prometheus
exposition at ``GET /metrics`` -- so the load generator's client-side
percentiles can be cross-checked against the server's own.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass

from repro import obs
from repro.batch.cache import LayoutCache
from repro.batch.spec import SCHEMES, SweepSpec, parse_network
from repro.obs import context as ocontext
from repro.obs import live
from repro.obs import logging as olog
from repro.obs import slo as oslo
from repro.obs.export import chrome_trace, write_prometheus
from repro.obs.trace import SpanRecord
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    SERVE_SCHEMA,
    TRACE_HEADER,
    ChunkedJsonWriter,
    HttpError,
    HttpRequest,
    read_request,
    send_json,
)
from repro.serve.quotas import AdmissionGate, QuotaManager

__all__ = ["ServeConfig", "LayoutServer", "run_server"]

#: Latency buckets tuned for layout service times (sub-ms cache hits
#: through multi-second giant builds), in milliseconds.
LATENCY_BOUNDS_MS = (
    0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

MAX_LAYERS = 64
MAX_SWEEP_JOBS = 4096


@dataclass
class ServeConfig:
    """Everything ``repro serve`` forwards from its CLI flags."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    cache_dir: str | None = None
    validate: bool = True
    quota_rate: float = 0.0
    quota_burst: float = 20.0
    max_inflight: int = 0
    request_timeout_s: float = 120.0
    run_dir: str | None = None
    ready_file: str | None = None
    #: Head-sampling rate for requests arriving without an
    #: ``x-repro-trace`` header (inbound headers carry their own
    #: decision).  1.0 = trace everything.
    trace_sample: float = 1.0
    #: Latency objective: ``slo_target`` of requests must finish
    #: within ``slo_latency_ms`` and without a 5xx.
    slo_latency_ms: float = 250.0
    slo_target: float = 0.99
    #: Ring-buffer capacity of the ``/debug/requests`` request log.
    debug_requests: int = 256
    #: Watchdog poll cadence when ``run_dir`` is set (None = derive
    #: from the stall threshold, as sweeps do).
    watch_interval_s: float | None = None


class LayoutServer:
    """One bound server; ``start`` then ``serve_forever`` or ``aclose``."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.pool: WorkerPool | None = None
        self.cache = (
            LayoutCache(config.cache_dir)
            if config.cache_dir is not None
            else None
        )
        self.quotas = QuotaManager(
            rate=config.quota_rate, burst=config.quota_burst
        )
        self.gate = AdmissionGate(config.max_inflight)
        self.slo = oslo.SLOConfig(
            latency_ms=config.slo_latency_ms, target=config.slo_target
        )
        self.requests = ocontext.RequestLog(
            capacity=config.debug_requests
        )
        self._req_seq = 0
        self._flights: dict[tuple, asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self._watchdog: live.Watchdog | None = None
        self._obs_here = False
        self.started_unix = 0.0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "LayoutServer":
        cfg = self.config
        if not obs.enabled():
            obs.enable()
            self._obs_here = True
        if cfg.run_dir is not None:
            os.makedirs(cfg.run_dir, exist_ok=True)
            if not olog.configured():
                olog.configure(os.path.join(cfg.run_dir, live.LOG_NAME))
            live.write_run_manifest(
                cfg.run_dir,
                kind="serve",
                workers=cfg.workers,
                cache_dir=cfg.cache_dir,
            )
        loop = asyncio.get_running_loop()
        self.pool = WorkerPool(
            cfg.workers,
            cache_dir=cfg.cache_dir,
            validate=cfg.validate,
            run_dir=cfg.run_dir,
        ).start(loop)
        if cfg.run_dir is not None:
            # The same live loop a sweep run gets: classify pool
            # worker heartbeats and rewrite <run_dir>/metrics.prom
            # (with the SLO gauges) so `repro watch RUNDIR` works
            # against the live daemon.
            self._on_watch_tick({})
            self._watchdog = live.Watchdog(
                cfg.run_dir,
                interval_s=cfg.watch_interval_s,
                on_tick=self._on_watch_tick,
            ).start()
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port
        )
        self.started_unix = time.time()
        olog.info(
            "serve.start",
            host=cfg.host,
            port=self.port,
            workers=cfg.workers,
            cache_dir=cfg.cache_dir,
            quota_rate=cfg.quota_rate,
            max_inflight=cfg.max_inflight,
        )
        if cfg.ready_file:
            live.write_json_atomic(
                cfg.ready_file,
                {
                    "schema": SERVE_SCHEMA,
                    "host": cfg.host,
                    "port": self.port,
                    "pid": os.getpid(),
                },
            )
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def _on_watch_tick(self, health: dict) -> None:
        """Watchdog callback: refresh gauges + the live metrics file."""
        cfg = self.config
        try:
            if self.pool is not None:
                obs.gauge("serve.live.workers_alive", self.pool.alive())
            obs.gauge("serve.live.inflight_keys", len(self._flights))
            oslo.update_slo_gauges(self.slo)
            if cfg.run_dir is not None:
                write_prometheus(
                    os.path.join(cfg.run_dir, live.METRICS_NAME)
                )
        except Exception:  # pragma: no cover - telemetry must not kill
            pass

    async def aclose(self) -> None:
        olog.info("serve.stop")
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._flights.values()):
            task.cancel()
        self._flights.clear()
        if self.pool is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, self.pool.close
            )
            self.pool = None
        if self._obs_here:
            obs.disable()
            self._obs_here = False

    # -- connection / routing ---------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    req = await read_request(reader)
                except HttpError as exc:
                    await send_json(
                        writer,
                        exc.status,
                        {"error": exc.message},
                        close=True,
                    )
                    break
                if req is None:
                    break
                close = req.wants_close
                try:
                    done = await self._route(req, writer, close=close)
                except HttpError as exc:
                    obs.count("serve.errors")
                    await send_json(
                        writer,
                        exc.status,
                        {"error": exc.message},
                        retry_after=exc.retry_after,
                        close=close,
                    )
                    done = True
                except (ConnectionError, asyncio.CancelledError):
                    raise
                except Exception as exc:  # noqa: BLE001 - render as 500
                    obs.count("serve.errors")
                    olog.error(
                        "serve.internal_error",
                        path=req.path,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    await send_json(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                        close=close,
                    )
                    done = True
                if not done or close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- request tracing ---------------------------------------------------

    def _begin_request(self, req: HttpRequest) -> ocontext.RequestTrace:
        """Open the per-request root span and assign a request id.

        The inbound ``x-repro-trace`` header (stamped by loadgen or
        an upstream) wins; a request without one gets a fresh context
        head-sampled at ``--trace-sample``.
        """
        ctx = ocontext.parse_traceparent(req.headers.get(TRACE_HEADER))
        if ctx is None:
            ctx = ocontext.new_context(
                sampled=ocontext.should_sample(self.config.trace_sample)
            )
        self._req_seq += 1
        request_id = f"r{self._req_seq:06d}-{ctx.trace_id[:8]}"
        return ocontext.RequestTrace(
            ctx,
            request_id,
            path=req.path,
            client=req.client_id,
        )

    def _finish_request(
        self,
        rt: ocontext.RequestTrace,
        status: int,
        *,
        source: str | None = None,
        error: str | None = None,
        **attrs,
    ) -> None:
        """Close the root span, observe latency, retain the request.

        One exit point for success and failure alike: the latency
        histogram gets an exemplar naming this trace, 5xx statuses
        feed the SLO error budget, and the tail-sampling ring buffer
        keeps the record (spans included when sampled) for
        ``/debug/requests`` / ``/debug/trace/<id>``.
        """
        if source is not None:
            attrs["source"] = source
        if error is not None:
            attrs["error"] = error
        root = rt.finish(status, **attrs)
        obs.observe(
            "serve.request_ms",
            rt.latency_ms,
            LATENCY_BOUNDS_MS,
            exemplar=rt.ctx.trace_id,
        )
        if status >= 500:
            obs.count("serve.errors_5xx")
        self.requests.add(
            ocontext.RequestRecord(
                request_id=rt.request_id,
                trace_id=rt.ctx.trace_id,
                path=str(root.attrs.get("path", "")),
                status=status,
                latency_ms=rt.latency_ms,
                time_unix=time.time(),
                sampled=rt.ctx.sampled,
                source=source,
                error=error,
                attrs={
                    k: v
                    for k, v in root.attrs.items()
                    if k in ("network", "scheme", "layers", "jobs", "client")
                },
                root=root if rt.ctx.sampled else None,
            )
        )
        olog.info(
            "serve.request",
            request_id=rt.request_id,
            trace=rt.ctx.trace_id,
            path=root.attrs.get("path"),
            status=status,
            latency_ms=round(rt.latency_ms, 3),
            source=source,
        )

    async def _route(
        self,
        req: HttpRequest,
        writer: asyncio.StreamWriter,
        *,
        close: bool,
    ) -> bool:
        """Dispatch one request; True keeps the connection usable."""
        obs.count("serve.requests")
        if req.path == "/healthz" and req.method == "GET":
            await send_json(
                writer,
                200,
                {
                    "schema": SERVE_SCHEMA,
                    "ok": True,
                    "workers_alive": (
                        self.pool.alive() if self.pool else 0
                    ),
                },
                close=close,
            )
            return True
        if req.path == "/stats" and req.method == "GET":
            await send_json(writer, 200, self.stats(), close=close)
            return True
        if req.path == "/metrics" and req.method == "GET":
            from repro.accel import backend_info
            from repro.obs.export import prometheus_info, prometheus_text

            oslo.update_slo_gauges(self.slo)
            info = backend_info()
            body = (
                prometheus_text()
                + prometheus_info(
                    "accel_backend",
                    {
                        "backend": info["accel"],
                        "table": info["table"],
                        "engine": info["engine"],
                    },
                )
            ).encode()
            from repro.serve.protocol import send_response

            await send_response(
                writer,
                200,
                body,
                content_type="text/plain; version=0.0.4",
                close=close,
            )
            return True
        if req.path == "/debug/requests" and req.method == "GET":
            limit = None
            if "limit" in req.query:
                try:
                    limit = int(req.query["limit"])
                except ValueError:
                    raise HttpError(400, "limit must be an integer") from None
            await send_json(
                writer,
                200,
                {
                    "schema": SERVE_SCHEMA,
                    "requests": self.requests.requests(limit),
                    "totals": self.requests.snapshot(),
                },
                close=close,
            )
            return True
        if req.path.startswith("/debug/trace/") and req.method == "GET":
            await send_json(
                writer,
                200,
                self._trace_document(req.path[len("/debug/trace/"):]),
                close=close,
            )
            return True
        if req.path == "/v1/layout" and req.method == "POST":
            rt = self._begin_request(req)
            token = ocontext.set_context(rt.ctx)
            try:
                doc = await self._layout_request(req, rt)
            except HttpError as exc:
                self._finish_request(rt, exc.status, error=exc.message)
                raise
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:
                self._finish_request(
                    rt, 500, error=f"{type(exc).__name__}: {exc}"
                )
                raise
            finally:
                ocontext.reset_context(token)
            doc = {
                **doc,
                "request_id": rt.request_id,
                "trace_id": rt.ctx.trace_id,
            }
            self._finish_request(
                rt,
                200,
                source=doc.get("source"),
                network=doc.get("network"),
                scheme=doc.get("scheme"),
                layers=doc.get("layers"),
            )
            await send_json(writer, 200, doc, close=close)
            return True
        if req.path == "/v1/sweep" and req.method == "POST":
            rt = self._begin_request(req)
            token = ocontext.set_context(rt.ctx)
            try:
                await self._sweep_request(req, writer, rt)
            except HttpError as exc:
                self._finish_request(rt, exc.status, error=exc.message)
                raise
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:
                self._finish_request(
                    rt, 500, error=f"{type(exc).__name__}: {exc}"
                )
                raise
            finally:
                ocontext.reset_context(token)
            self._finish_request(rt, 200, source="sweep")
            # Chunked responses end the framing cleanly, but any error
            # mid-stream already wrote a partial body: simplest safe
            # policy is one sweep per connection.
            return False
        known = (
            "/healthz", "/stats", "/metrics", "/debug/requests",
            "/v1/layout", "/v1/sweep",
        )
        if req.path in known or req.path.startswith("/debug/trace/"):
            raise HttpError(405, f"{req.method} not allowed on {req.path}")
        raise HttpError(404, f"no such endpoint: {req.path}")

    def _trace_document(self, ident: str) -> dict:
        """The Chrome-trace JSON for one retained request."""
        rec = self.requests.find(ident.strip("/"))
        if rec is None:
            raise HttpError(
                404, f"no retained request for id {ident!r}"
            )
        if rec.root is None:
            raise HttpError(
                404,
                f"request {rec.request_id} was retained without spans "
                "(not sampled)",
            )
        doc = chrome_trace(
            [rec.root], {"counters": {}, "gauges": {}, "histograms": {}}
        )
        doc["otherData"].update(
            {
                "trace_id": rec.trace_id,
                "request_id": rec.request_id,
                "path": rec.path,
                "status": rec.status,
                "latency_ms": round(rec.latency_ms, 3),
            }
        )
        return doc

    # -- admission ---------------------------------------------------------

    def _admit(self, req: HttpRequest, cost: float) -> None:
        ok, retry_after = self.quotas.admit(req.client_id, cost)
        if not ok:
            obs.count("serve.rejected_quota")
            olog.warning(
                "serve.quota_reject",
                client=req.client_id,
                cost=cost,
                retry_after_s=round(retry_after, 3)
                if retry_after != float("inf")
                else None,
            )
            if retry_after == float("inf"):
                raise HttpError(
                    429,
                    f"request cost {cost:g} exceeds quota burst "
                    f"{self.quotas.burst:g}",
                )
            raise HttpError(
                429,
                f"quota exceeded for client {req.client_id!r}",
                retry_after=retry_after,
            )

    # -- /v1/layout --------------------------------------------------------

    @staticmethod
    def _parse_layout_body(doc: dict) -> tuple[str, str, int, bool]:
        network = doc.get("network")
        if not isinstance(network, str) or not network:
            raise HttpError(400, "missing required field: network")
        scheme = doc.get("scheme", "auto")
        if scheme not in SCHEMES:
            raise HttpError(
                400,
                f"unknown scheme {scheme!r}; known: {', '.join(SCHEMES)}",
            )
        layers = doc.get("layers", 2)
        if not isinstance(layers, int) or isinstance(layers, bool):
            raise HttpError(400, "layers must be an integer")
        if not 1 <= layers <= MAX_LAYERS:
            raise HttpError(400, f"layers must be in [1, {MAX_LAYERS}]")
        include_layout = bool(doc.get("include_layout", False))
        return network, scheme, layers, include_layout

    async def _layout_request(
        self, req: HttpRequest, rt: ocontext.RequestTrace
    ) -> dict:
        network, scheme, layers, include_layout = self._parse_layout_body(
            req.json()
        )
        rt.annotate(network=network, scheme=scheme, layers=layers)
        if include_layout and self.cache is None:
            raise HttpError(
                400,
                "include_layout requires the server to run with "
                "--cache-dir (layout payloads are served from the cache)",
            )
        self._admit(req, 1.0)
        if not self.gate.try_enter():
            obs.count("serve.rejected_busy")
            raise HttpError(
                503,
                f"server at max in-flight ({self.gate.limit}); retry",
                retry_after=1.0,
            )
        try:
            doc = await self._resolve(network, scheme, layers, rt)
        finally:
            self.gate.leave()
        if include_layout:
            entry = await self._cache_probe(network, scheme, layers)
            if entry is not None:
                doc = {**doc, "layout": json.loads(entry.layout_json)}
        return doc

    async def _resolve(
        self,
        network: str,
        scheme: str,
        layers: int,
        rt: ocontext.RequestTrace,
    ) -> dict:
        """One coalesced lookup-or-build; returns a response document.

        The *leader* request (the one that starts the flight) owns
        the build spans: cache probe, pool dispatch, and the worker's
        shipped forest all land under its root.  A coalesced follower
        instead records exactly one link-span naming the leader's
        trace id -- its trace shows the wait, not duplicated work.
        """
        key = (network, scheme, layers)
        task = self._flights.get(key)
        if task is not None:
            obs.count("serve.coalesced")
            leader_trace = getattr(task, "leader_trace", None)
            link = rt.link(leader_trace or "unknown")
            t_wait = time.perf_counter()
            doc = await self._await_flight(task)
            link.duration = time.perf_counter() - t_wait
            return {**doc, "source": "coalesced"}
        task = asyncio.ensure_future(
            self._lookup_or_build(network, scheme, layers, rt)
        )
        task.leader_trace = rt.ctx.trace_id
        self._flights[key] = task
        task.add_done_callback(
            lambda _t, _k=key: self._flights.pop(_k, None)
        )
        return await self._await_flight(task)

    async def _await_flight(self, task: asyncio.Task) -> dict:
        try:
            return await asyncio.wait_for(
                asyncio.shield(task), self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            obs.count("serve.timeouts")
            raise HttpError(
                504,
                f"build exceeded {self.config.request_timeout_s:g}s",
            ) from None

    async def _cache_probe(
        self, network: str, scheme: str, layers: int
    ):
        """Probe the cache off-loop; None on miss or no cache."""
        if self.cache is None:
            return None
        net = _parse_net(network)

        def probe():
            key, key_doc = self.cache.key_for(
                net, scheme=scheme, layers=layers
            )
            return self.cache.get(key, key_doc)

        entry = await asyncio.get_running_loop().run_in_executor(
            None, probe
        )
        if entry is not None and entry.metrics is None:
            return None
        return entry

    async def _lookup_or_build(
        self,
        network: str,
        scheme: str,
        layers: int,
        rt: ocontext.RequestTrace,
    ) -> dict:
        t0 = time.perf_counter()
        net = _parse_net(network)  # 400 before the pool sees bad specs
        with rt.child("cache.probe", network=network):
            entry = await self._cache_probe(network, scheme, layers)
        if entry is not None:
            obs.count("serve.hits")
            olog.debug(
                "serve.hit", network=network, scheme=scheme, layers=layers
            )
            return {
                "schema": SERVE_SCHEMA,
                "job_id": f"{network}@L{layers}/{scheme}",
                "network": network,
                "scheme": scheme,
                "layers": layers,
                "N": net.num_nodes,
                "E": net.num_edges,
                "metrics": entry.metrics,
                "source": "cache",
                "elapsed_ms": round(
                    (time.perf_counter() - t0) * 1000.0, 3
                ),
            }
        obs.count("serve.built")
        olog.info(
            "serve.build", network=network, scheme=scheme, layers=layers
        )
        assert self.pool is not None
        trace = (
            rt.ctx.child().as_dict() if rt.ctx.sampled else None
        )
        with rt.child(
            "pool.build", network=network, scheme=scheme, layers=layers
        ) as build_span:
            env = await self.pool.submit(
                network, scheme, layers, trace=trace
            )
            self._graft_worker_spans(build_span, env)
        res = env["result"]
        return {
            "schema": SERVE_SCHEMA,
            "job_id": res["job_id"],
            "network": res["network"],
            "scheme": res["scheme"],
            "layers": res["layers"],
            "N": res["N"],
            "E": res["E"],
            "metrics": res["metrics"],
            "source": res["source"],
            "elapsed_ms": round((time.perf_counter() - t0) * 1000.0, 3),
        }

    @staticmethod
    def _graft_worker_spans(
        build_span: SpanRecord, env: dict
    ) -> None:
        """Reroot a pool worker's shipped forest under the request.

        The forest is wrapped in a ``pool.worker`` span whose integer
        ``worker_id`` attr lifts it onto its own process row in the
        Chrome-trace rendering -- the same convention sweep worker
        forests use.  Fork shares ``perf_counter``'s clock on the
        platforms we fork on, so child timestamps line up with the
        server's spans.
        """
        spans = env.get("spans")
        if not spans:
            return
        forest = [SpanRecord.from_dict(d) for d in spans]
        start = min((r.start for r in forest if r.start), default=0.0)
        end = max((r.end() for r in forest), default=start)
        wrapper = SpanRecord(
            name="pool.worker",
            attrs={"worker_id": env.get("worker")},
            start=start,
            duration=max(0.0, end - start),
            children=forest,
        )
        build_span.children.append(wrapper)

    # -- /v1/sweep ---------------------------------------------------------

    async def _sweep_request(
        self,
        req: HttpRequest,
        writer: asyncio.StreamWriter,
        rt: ocontext.RequestTrace,
    ) -> None:
        body = req.json()
        networks = body.get("networks")
        if not isinstance(networks, list) or not networks:
            raise HttpError(
                400, "missing required field: networks (non-empty list)"
            )
        layers = body.get("layers", [2])
        if not isinstance(layers, list) or not all(
            isinstance(x, int) and not isinstance(x, bool) for x in layers
        ):
            raise HttpError(400, "layers must be a list of integers")
        scheme = body.get("scheme", "auto")
        if scheme not in SCHEMES:
            raise HttpError(
                400,
                f"unknown scheme {scheme!r}; known: {', '.join(SCHEMES)}",
            )
        spec = SweepSpec(
            networks=[str(n) for n in networks],
            layers=layers,
            scheme=scheme,
            name=str(body.get("name", "serve-sweep")),
        )
        jobs = spec.expand()
        if len(jobs) > MAX_SWEEP_JOBS:
            raise HttpError(
                413,
                f"sweep expands to {len(jobs)} jobs "
                f"(limit {MAX_SWEEP_JOBS})",
            )
        rt.annotate(sweep=spec.name, jobs=len(jobs))
        self._admit(req, float(len(jobs)))
        if not self.gate.try_enter():
            obs.count("serve.rejected_busy")
            raise HttpError(
                503,
                f"server at max in-flight ({self.gate.limit}); retry",
                retry_after=1.0,
            )
        obs.count("serve.sweeps")
        stream = ChunkedJsonWriter(writer)
        await stream.start()
        await stream.send(
            {
                "schema": SERVE_SCHEMA,
                "event": "start",
                "name": spec.name,
                "jobs": len(jobs),
            }
        )
        t0 = time.perf_counter()
        sources: dict[str, int] = {}
        errors = 0
        try:
            pending = {
                asyncio.ensure_future(
                    self._resolve(j.network, j.scheme, j.layers, rt)
                ): j
                for j in jobs
            }
            while pending:
                done, _ = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    job = pending.pop(task)
                    try:
                        doc = task.result()
                    except HttpError as exc:
                        errors += 1
                        await stream.send(
                            {
                                "event": "error",
                                "index": job.index,
                                "job_id": job.job_id,
                                "error": exc.message,
                            }
                        )
                        continue
                    except Exception as exc:  # noqa: BLE001 - streamed
                        errors += 1
                        await stream.send(
                            {
                                "event": "error",
                                "index": job.index,
                                "job_id": job.job_id,
                                "error": f"{type(exc).__name__}: {exc}",
                            }
                        )
                        continue
                    sources[doc["source"]] = (
                        sources.get(doc["source"], 0) + 1
                    )
                    await stream.send(
                        {"event": "job", "index": job.index, **doc}
                    )
            await stream.send(
                {
                    "event": "done",
                    "jobs": len(jobs),
                    "errors": errors,
                    "sources": sources,
                    "elapsed_s": round(time.perf_counter() - t0, 4),
                }
            )
            await stream.finish()
        finally:
            self.gate.leave()

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        from repro.accel import backend_info

        slo_doc = oslo.update_slo_gauges(self.slo)
        reg = obs.registry().snapshot()
        counters = reg.get("counters", {})
        return {
            "schema": SERVE_SCHEMA,
            "backends": backend_info(),
            "uptime_s": round(time.time() - self.started_unix, 3),
            "requests": counters.get("serve.requests", 0),
            "hits": counters.get("serve.hits", 0),
            "built": counters.get("serve.built", 0),
            "coalesced": counters.get("serve.coalesced", 0),
            "errors": counters.get("serve.errors", 0),
            "rejected_quota": counters.get("serve.rejected_quota", 0),
            "rejected_busy": counters.get("serve.rejected_busy", 0),
            "inflight_keys": len(self._flights),
            "pool": self.pool.snapshot() if self.pool else None,
            "gate": self.gate.snapshot(),
            "quotas": self.quotas.snapshot(),
            "cache": (
                self.cache.stats.as_dict() if self.cache else None
            ),
            "slo": slo_doc,
            "debug_requests": self.requests.snapshot(),
        }


def _parse_net(network: str):
    """``parse_network`` with SystemExit turned into a 400."""
    try:
        return parse_network(network)
    except SystemExit as exc:
        raise HttpError(400, str(exc)) from None


async def run_server(config: ServeConfig) -> None:
    """Start, announce, and serve until cancelled (the CLI entry)."""
    server = await LayoutServer(config).start()
    print(
        f"repro serve: listening on {config.host}:{server.port} "
        f"({config.workers} worker{'s' if config.workers != 1 else ''}, "
        f"cache={'on' if config.cache_dir else 'off'})",
        flush=True,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
