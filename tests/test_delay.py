"""Wire-delay performance model."""

import pytest

from repro.core import layout_hypercube, layout_kary
from repro.core.delay import DelayModel, performance
from repro.core.folding import fold_layout


class TestDelayModel:
    def test_linear_wire_delay(self):
        m = DelayModel(alpha=2.0)
        assert m.wire_delay(10) == 20.0

    def test_rc_wire_delay(self):
        m = DelayModel(alpha=0.0, beta=0.5)
        assert m.wire_delay(10) == 50.0

    def test_mixed(self):
        m = DelayModel(alpha=1.0, beta=1.0)
        assert m.wire_delay(3) == 3 + 9


class TestPerformance:
    def test_report_fields(self):
        rep = performance(layout_kary(3, 2))
        assert rep.clock_period > rep.max_wire_delay
        assert rep.worst_latency >= rep.avg_latency > 0

    def test_clock_improves_with_layers(self):
        r2 = performance(layout_hypercube(8, layers=2, node_side="min"))
        r8 = performance(layout_hypercube(8, layers=8, node_side="min"))
        assert r8.max_wire_delay < r2.max_wire_delay
        assert r8.clock_period < r2.clock_period

    def test_latency_improves_with_layers(self):
        r2 = performance(layout_hypercube(8, layers=2, node_side="min"))
        r8 = performance(layout_hypercube(8, layers=8, node_side="min"))
        assert r8.worst_latency < r2.worst_latency
        assert r8.avg_latency < r2.avg_latency

    def test_folding_does_not_improve_clock(self):
        base = layout_hypercube(8, layers=2)
        folded = fold_layout(base, 8)
        rb = performance(base)
        rf = performance(folded)
        assert rf.max_wire_delay == rb.max_wire_delay
        assert rf.worst_latency == pytest.approx(rb.worst_latency)

    def test_rc_model_amplifies_gain(self):
        """Quadratic wire delay: halving max wire quarters its delay."""
        rc = DelayModel(alpha=0.0, beta=1.0, router_delay=0.0, node_delay=0.0)
        r2 = performance(layout_hypercube(8, layers=2, node_side="min"), rc)
        r8 = performance(layout_hypercube(8, layers=8, node_side="min"), rc)
        linear = DelayModel(beta=0.0, router_delay=0.0, node_delay=0.0)
        l2 = performance(layout_hypercube(8, layers=2, node_side="min"), linear)
        l8 = performance(layout_hypercube(8, layers=8, node_side="min"), linear)
        assert (r2.max_wire_delay / r8.max_wire_delay) > (
            l2.max_wire_delay / l8.max_wire_delay
        )

    def test_sampling_bounds(self):
        lay = layout_hypercube(6)
        full = performance(lay, max_sources=64)
        sampled = performance(lay, max_sources=4)
        assert sampled.worst_latency <= full.worst_latency

    def test_as_dict(self):
        d = performance(layout_kary(3, 2)).as_dict()
        assert set(d) == {
            "name", "L", "clock_period", "max_wire_delay",
            "worst_latency", "avg_latency",
        }
