"""Scheme-level tests for PN-cluster layouts (Sections 3.2/4.2/4.3/5.2)."""

import pytest

from conftest import assert_layout_ok
from repro.core.schemes import (
    layout_butterfly,
    layout_cayley,
    layout_ccc,
    layout_hsn,
    layout_isn,
    layout_kary_cluster,
    layout_reduced_hypercube,
)
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    IndirectSwapNetwork,
    KAryNCubeCluster,
    ReducedHypercube,
    StarGraph,
)


class TestButterflyLayout:
    @pytest.mark.parametrize("m,L", [(2, 2), (3, 2), (3, 4), (4, 4), (3, 3)])
    def test_valid_and_exact(self, m, L):
        lay = layout_butterfly(m, layers=L)
        assert_layout_ok(lay, Butterfly(m))

    def test_quotient_channels_carry_multiplicity_4(self):
        """Each quotient hypercube edge contributes 4 parallel links, so
        channel track counts are ~4x the plain quotient's."""
        lay = layout_butterfly(4)  # quotient: 3-cube of 8 clusters
        # Rows: quotient is 2 columns wide (lo bit), each row a 1-cube
        # with multiplicity 4 -> 4 tracks.
        assert all(t == 4 for t in lay.meta["row_tracks"])

    def test_area_shrinks_with_layers(self):
        a2 = layout_butterfly(4, layers=2).area
        a4 = layout_butterfly(4, layers=4).area
        assert a4 < a2


class TestISNLayout:
    @pytest.mark.parametrize("m,L", [(2, 2), (3, 2), (3, 4)])
    def test_valid_and_exact(self, m, L):
        lay = layout_isn(m, layers=L)
        assert_layout_ok(lay, IndirectSwapNetwork(m))

    def test_isn_rows_half_of_butterfly(self):
        bf = layout_butterfly(4)
        isn = layout_isn(4)
        assert all(
            2 * ti == tb
            for ti, tb in zip(isn.meta["row_tracks"], bf.meta["row_tracks"])
        )

    def test_isn_smaller_than_butterfly(self):
        """Section 4.3: ~4x less area, ~2x shorter wires."""
        bf = layout_butterfly(4)
        isn = layout_isn(4)
        assert isn.area < bf.area
        assert isn.max_wire_length() < bf.max_wire_length()


class TestCCCLayout:
    @pytest.mark.parametrize("n,L", [(3, 2), (3, 4), (4, 2), (4, 6), (4, 3)])
    def test_valid_and_exact(self, n, L):
        lay = layout_ccc(n, layers=L)
        assert_layout_ok(lay, CubeConnectedCycles(n))

    def test_quotient_channel_tracks_near_formula(self):
        """Quotient channels: rows are 2-cubes with multiplicity 1, i.e.
        2 tracks by the collinear formula.  Because inter-cluster links
        attach to *different member nodes* inside a block, two links
        touching at a block sometimes cannot share a track (the arriving
        link's pin may sit right of the departing link's), costing at
        most one extra track per touching pair -- an o(1) overhead the
        paper's asymptotics absorb.  See DESIGN.md."""
        from repro.collinear.formulas import hypercube_tracks

        lay = layout_ccc(4)
        f = hypercube_tracks(2)
        assert all(f <= t <= f + 1 for t in lay.meta["row_tracks"])

    def test_reduced_hypercube(self):
        lay = layout_reduced_hypercube(4, layers=4)
        assert_layout_ok(lay, ReducedHypercube(4))


class TestHSNLayout:
    @pytest.mark.parametrize(
        "r,l,L", [(3, 2, 2), (4, 2, 2), (3, 3, 2), (3, 3, 4), (4, 2, 3)]
    )
    def test_valid_and_exact(self, r, l, L):
        lay = layout_hsn(CompleteGraph(r), l, layers=L)
        assert_layout_ok(lay, HSN(CompleteGraph(r), l))

    def test_quotient_channels_are_ghc(self):
        # HSN(K3, 3): quotient GHC(3,3); rows are K3 columns with
        # multiplicity 1: |9/4| = 2 tracks.
        lay = layout_hsn(CompleteGraph(3), 3)
        assert all(t == 2 for t in lay.meta["row_tracks"])


class TestKAryClusterLayout:
    @pytest.mark.parametrize("k,n,c,L", [(3, 2, 2, 2), (3, 2, 4, 4), (4, 2, 2, 2)])
    def test_valid_and_exact(self, k, n, c, L):
        lay = layout_kary_cluster(k, n, c, layers=L)
        assert_layout_ok(lay, KAryNCubeCluster(k, n, c))

    def test_complete_clusters(self):
        lay = layout_kary_cluster(3, 2, 3, cluster="complete")
        assert_layout_ok(lay, KAryNCubeCluster(3, 2, 3, cluster="complete"))

    def test_quotient_channels_match_plain_kary(self):
        """Section 3.2: the cluster-c layout keeps the k-ary n-cube's
        channel structure up to the +1-per-channel block-attachment
        overhead (see the CCC test)."""
        from repro.core import layout_kary

        plain = layout_kary(3, 2)
        clustered = layout_kary_cluster(3, 2, 2)
        for p, c in zip(plain.meta["row_tracks"], clustered.meta["row_tracks"]):
            assert p <= c <= p + 1
        for p, c in zip(plain.meta["col_tracks"], clustered.meta["col_tracks"]):
            assert p <= c <= p + 1


class TestCayleyLayout:
    def test_star_graph(self):
        lay = layout_cayley(StarGraph(4))
        assert_layout_ok(lay, StarGraph(4))

    def test_star_quotient_row_tracks(self):
        """Quotient K_4 with multiplicity (n-2)! = 2: collinear K_4 has
        |16/4| = 4 tracks, doubled to 8."""
        lay = layout_cayley(StarGraph(4))
        assert lay.meta["row_tracks"] == [8]

    def test_star_multilayer(self):
        lay = layout_cayley(StarGraph(4), layers=4)
        assert_layout_ok(lay, StarGraph(4))
