"""Exact minimum cutwidth: the true optimum for collinear layouts.

A collinear layout under a node order needs exactly max-cut(order)
tracks (left-edge optimality), so the *minimum over orders* -- the
graph's cutwidth -- is the best any collinear layout can do.  This
module computes it exactly by dynamic programming over vertex subsets:

    dp[S] = min over v in S of max(dp[S - v], cut(S))

where ``cut(S)`` counts edges between S and its complement.  O(2^n n)
time with bitmask adjacency; practical to ~20 nodes, which covers the
instances needed to certify the paper's orders:

* the ring's 2 tracks and K_N's |N^2/4| are exactly optimal;
* binary order achieves the hypercube's true cutwidth (|2N/3|,
  Harper); the 3-ary 2-cube's 8 tracks are exactly optimal;
* the left-edge GHC(4,4) layout (18 tracks, beating the paper's
  recurrence value of 20) is certified optimal too.
"""

from __future__ import annotations

from repro import obs
from repro.topology.base import Network

__all__ = ["exact_cutwidth", "optimal_order", "cutwidth_certificate"]


def _bit_adjacency(network: Network) -> list[int]:
    index = network.index
    adj = [0] * network.num_nodes
    for u, v in network.edges:
        iu, iv = index[u], index[v]
        adj[iu] |= 1 << iv
        adj[iv] |= 1 << iu
    return adj


def exact_cutwidth(network: Network, *, limit: int = 20) -> int:
    """The graph's exact cutwidth (minimum collinear track count).

    Raises ``ValueError`` beyond ``limit`` nodes (the DP holds 2^n
    entries).  Parallel edges each count toward the cut.
    """
    n = network.num_nodes
    if n > limit:
        raise ValueError(
            f"exact cutwidth DP is exponential; {n} nodes > limit {limit}"
        )
    if n <= 1:
        return 0
    # Multigraph support: count parallel edges in the cut.
    index = network.index
    weights: dict[tuple[int, int], int] = {}
    for u, v in network.edges:
        iu, iv = sorted((index[u], index[v]))
        weights[(iu, iv)] = weights.get((iu, iv), 0) + 1
    adj = _bit_adjacency(network)

    def cut_of(s: int) -> int:
        total = 0
        for (iu, iv), wt in weights.items():
            if ((s >> iu) & 1) != ((s >> iv) & 1):
                total += wt
        return total

    # Incremental cut: cut(S) = cut(S \ v) + deg_w(v, outside) - deg_w(v, S\v)
    # computed on the fly from weighted adjacency rows.
    wadj: list[dict[int, int]] = [dict() for _ in range(n)]
    for (iu, iv), wt in weights.items():
        wadj[iu][iv] = wt
        wadj[iv][iu] = wt

    size = 1 << n
    with obs.span("exact_cutwidth", n=n, states=size):
        INF = float("inf")
        dp = [INF] * size
        cut = [0] * size
        dp[0] = 0
        for s in range(1, size):
            v = (s & -s).bit_length() - 1
            prev = s & (s - 1)
            # cut(S) from cut(prev): edges of v to outside(S) add, to
            # prev drop.
            delta = 0
            for w, wt in wadj[v].items():
                if (prev >> w) & 1:
                    delta -= wt
                else:
                    delta += wt
            cut[s] = cut[prev] + delta
            best = INF
            t = s
            while t:
                u = (t & -t).bit_length() - 1
                t &= t - 1
                # Removing u last: recompute cut(S) is the same for all
                # u; candidate = max(dp[S - u], cut(S)).
                cand = dp[s ^ (1 << u)]
                if cand < best:
                    best = cand
            dp[s] = max(best, cut[s])
    obs.count("cutwidth.dp_runs")
    obs.count("cutwidth.dp_states", size)
    return int(dp[size - 1])


def cutwidth_certificate(
    network: Network, *, limit: int = 18
) -> tuple[int, list]:
    """``(cutwidth, order)`` with the order achieving the cutwidth.

    One DP run instead of the two that separate
    :func:`exact_cutwidth` + :func:`optimal_order` calls would cost --
    the differential fuzzer certifies every small network this way, so
    the saving is on its hot path.
    """
    order = optimal_order(network, limit=limit)
    if not order:
        return 0, order
    # The order's max cut IS the cutwidth (backtracking preserves the
    # dp optimum); recompute it directly instead of re-running the DP.
    pos = {v: p for p, v in enumerate(order)}
    profile = [0] * max(len(order) - 1, 1)
    for u, v in network.edges:
        lo, hi = sorted((pos[u], pos[v]))
        for p in range(lo, hi):
            profile[p] += 1
    return max(profile, default=0), order


def optimal_order(network: Network, *, limit: int = 18) -> list:
    """An order achieving the exact cutwidth, by DP backtracking."""
    n = network.num_nodes
    if n > limit:
        raise ValueError(f"{n} nodes > limit {limit}")
    if n == 0:
        return []
    index = network.index
    nodes = list(network.nodes)
    weights: dict[tuple[int, int], int] = {}
    for u, v in network.edges:
        iu, iv = sorted((index[u], index[v]))
        weights[(iu, iv)] = weights.get((iu, iv), 0) + 1
    wadj: list[dict[int, int]] = [dict() for _ in range(n)]
    for (iu, iv), wt in weights.items():
        wadj[iu][iv] = wt
        wadj[iv][iu] = wt

    size = 1 << n
    with obs.span("optimal_order", n=n, states=size):
        INF = float("inf")
        dp = [INF] * size
        cut = [0] * size
        dp[0] = 0
        for s in range(1, size):
            v = (s & -s).bit_length() - 1
            prev = s & (s - 1)
            delta = 0
            for w, wt in wadj[v].items():
                delta += -wt if (prev >> w) & 1 else wt
            cut[s] = cut[prev] + delta
            best = INF
            t = s
            while t:
                u = (t & -t).bit_length() - 1
                t &= t - 1
                cand = dp[s ^ (1 << u)]
                if cand < best:
                    best = cand
            dp[s] = max(best, cut[s])
    obs.count("cutwidth.dp_runs")
    obs.count("cutwidth.dp_states", size)

    # Backtrack: peel off a final vertex that realizes dp[S].
    order_rev: list[int] = []
    s = size - 1
    while s:
        t = s
        while t:
            u = (t & -t).bit_length() - 1
            t &= t - 1
            if max(dp[s ^ (1 << u)], cut[s]) == dp[s]:
                order_rev.append(u)
                s ^= 1 << u
                break
        else:  # pragma: no cover - dp invariant guarantees a choice
            raise AssertionError("dp backtrack failed")
    return [nodes[i] for i in reversed(order_rev)]
