"""Plain-text tables for paper-vs-measured reporting.

Every bench regenerates one of the paper's results as rows of
(parameters, paper leading term, measured value, ratio); these helpers
render them uniformly so EXPERIMENTS.md can quote bench output
verbatim.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.obs import logging as olog

__all__ = [
    "print_table",
    "comparison_row",
    "format_table",
    "json_cell",
    "timed_median",
]


def timed_median(
    fn: Callable[[], object],
    *,
    repeats: int = 3,
    warmup: int = 1,
    label: str | None = None,
) -> float:
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    ``warmup`` untimed calls run first, so caches (imports, lazy
    geometry tables, JIT'd numpy ufunc dispatch) are hot and one
    outlier interpreter pause cannot decide a timing gate.  Use for
    steady-state cells; cold-cache cells must keep their own
    single-sample timing, since a warmup call would defeat them.
    ``label`` names the measurement in the structured log (benches
    report results through their tables on stdout; per-sample
    diagnostics go to the logger, not ``print``).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    median = samples[len(samples) // 2]
    olog.debug(
        "bench.timed",
        label=label,
        seconds=round(median, 6),
        repeats=repeats,
        warmup=warmup,
        spread_s=round(samples[-1] - samples[0], 6),
    )
    return median


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    cols = len(headers)
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(cols)
    ]
    def line(items):
        return "  ".join(s.rjust(w) for s, w in zip(items, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out += [line(r) for r in cells]
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def comparison_row(params: Sequence, paper: float, measured: float) -> list:
    """A standard (params..., paper, measured, measured/paper) row.

    When the paper value is 0 the ratio is undefined and reported as
    ``None`` (rendered ``-``), not NaN.
    """
    ratio = measured / paper if paper else None
    return [*params, paper, measured, ratio]


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN never equals itself
            return "nan"
        if v == 0:
            return "0"
        if abs(v) >= 1e6 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:,.3f}" if abs(v) < 100 else f"{v:,.1f}"
    if isinstance(v, int):
        return f"{v:,}"
    return str(v)


def json_cell(v):
    """A JSON-serializable rendering of one table cell.

    Numbers, strings, bools, and None pass through (non-finite floats
    become None, since JSON has no NaN/Inf); everything else keeps its
    ``str`` form, matching what the text table printed.
    """
    if v is None or isinstance(v, (bool, int, str)):
        return v
    if isinstance(v, float):
        return v if v == v and abs(v) != float("inf") else None
    return str(v)
