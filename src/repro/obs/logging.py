"""Zero-dependency structured JSONL logging for the pipeline.

One JSON object per line, one file (or stream) per process tree.
Every record carries a level, an event name, a run id shared across
the parent and its workers, the emitting pid, the worker id (when
set), and the innermost open :mod:`repro.obs.trace` span -- so a log
line from deep inside a sweep worker is attributable without any call
site threading context through:

    {"ts": 1754650000.123, "level": "info", "event": "sweep.worker_start",
     "run": "a3f09c1b52de", "pid": 41712, "worker": 2,
     "span": "sweep.worker", "jobs": 5}

Like the rest of :mod:`repro.obs`, logging is **off by default** and
the disabled path is a single module-global check -- instrumented hot
paths (cache lookups, bench timers) pay ~nothing until
:func:`configure` installs a sink.  ``python -m repro <cmd>
--log-out FILE`` configures it for any CLI run; sweeps and fuzz runs
given a ``--run-dir`` default the sink to ``<run-dir>/log.jsonl`` so
``repro watch`` always has a log to tail.

Concurrency: files are opened in append mode and each record is one
``write()`` of one line, which POSIX ``O_APPEND`` keeps whole -- so a
parent and its forked workers can share one log file without
interleaving partial lines.  Forked children must call
:func:`fork_child` (the sweep/fuzz worker entries do) to get a fresh
file handle and lock; the sink also reopens itself if it notices a
pid change, as a belt-and-braces fallback.

The level threshold comes from ``configure(level=...)`` or the
``REPRO_LOG_LEVEL`` environment variable (default ``info``).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.obs import context as _context
from repro.obs import trace as _trace

__all__ = [
    "ENV_LEVEL",
    "LEVELS",
    "close",
    "configure",
    "configured",
    "debug",
    "error",
    "fork_child",
    "info",
    "level_no",
    "log",
    "new_run_id",
    "run_id",
    "set_worker_id",
    "warning",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {v: k for k, v in LEVELS.items()}
DEFAULT_LEVEL = "info"
ENV_LEVEL = "REPRO_LOG_LEVEL"


def level_no(level: str | int) -> int:
    """Numeric threshold for a level name (or pass a number through)."""
    if isinstance(level, int):
        return level
    try:
        return LEVELS[str(level).strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; known: {', '.join(LEVELS)}"
        ) from None


def new_run_id() -> str:
    """A fresh 12-hex-digit run id (shared parent + workers)."""
    return os.urandom(6).hex()


class _Config:
    """The process-wide sink: path or stream, level, run context."""

    __slots__ = (
        "path", "stream", "level", "run_id", "worker_id",
        "_fh", "_pid", "_lock",
    )

    def __init__(self, path, stream, level, run_id, worker_id):
        self.path = None if path is None else os.fspath(path)
        self.stream = stream
        self.level = level
        self.run_id = run_id
        self.worker_id = worker_id
        self._fh = None
        self._pid = None
        self._lock = threading.Lock()

    def sink(self):
        if self.stream is not None:
            return self.stream
        pid = os.getpid()
        if self._fh is None or self._pid != pid:
            # (Re)open after fork: the inherited handle shares the
            # parent's buffer.  Line-buffered append keeps concurrent
            # writers' records whole (one line per write, O_APPEND).
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
            self._fh = open(self.path, "a", buffering=1)
            self._pid = pid
        return self._fh


_config: _Config | None = None


def configure(
    path: str | os.PathLike | None = None,
    *,
    stream=None,
    level: str | int | None = None,
    run_id: str | None = None,
    worker_id: int | None = None,
) -> str:
    """Install the process-wide log sink; returns the run id.

    ``path`` appends JSONL records to a file; ``stream`` writes to an
    open text stream instead (tests use ``io.StringIO``).  With
    neither, records go to ``sys.stderr``.  ``level`` defaults to the
    ``REPRO_LOG_LEVEL`` environment variable, then ``"info"``.
    Reconfiguring replaces the previous sink.
    """
    global _config
    if level is None:
        level = os.environ.get(ENV_LEVEL, DEFAULT_LEVEL)
    if path is None and stream is None:
        stream = sys.stderr
    close()
    _config = _Config(
        path, stream, level_no(level), run_id or new_run_id(), worker_id
    )
    return _config.run_id


def close() -> None:
    """Remove the sink (logging becomes a no-op again)."""
    global _config
    cfg, _config = _config, None
    if cfg is not None and cfg._fh is not None:
        try:
            cfg._fh.close()
        except OSError:
            pass


def configured() -> bool:
    return _config is not None


def run_id() -> str | None:
    """The active run id, or None while unconfigured."""
    return _config.run_id if _config is not None else None


def set_worker_id(worker_id: int | None) -> None:
    """Stamp subsequent records with ``worker_id`` (workers call this)."""
    if _config is not None:
        _config.worker_id = worker_id


def fork_child(worker_id: int | None = None) -> None:
    """Reset per-process sink state in a freshly forked child.

    The child gets a new lock (the inherited one may be held by a
    parent thread caught mid-write at fork time) and a new file
    handle, keeping the parent's path, level, and run id.  No-op when
    logging is unconfigured; stream sinks are dropped (a forked
    child's writes to an in-memory stream would be invisible anyway).
    """
    global _config
    cfg = _config
    if cfg is None:
        return
    if cfg.path is None:
        _config = None
        return
    _config = _Config(
        cfg.path, None, cfg.level, cfg.run_id,
        worker_id if worker_id is not None else cfg.worker_id,
    )


def log(level: str | int, event: str, /, **fields) -> None:
    """Emit one structured record; a no-op below the threshold.

    Never raises: an unserializable field falls back to ``str`` and a
    failed write is dropped -- telemetry must not take down the run
    it observes.
    """
    cfg = _config
    if cfg is None:
        return
    no = level_no(level)
    if no < cfg.level:
        return
    rec = {
        "ts": round(time.time(), 6),
        "level": _LEVEL_NAMES.get(no, str(no)),
        "event": event,
        "run": cfg.run_id,
        "pid": os.getpid(),
    }
    if cfg.worker_id is not None:
        rec["worker"] = cfg.worker_id
    span = _trace.current_span_name()
    if span is not None:
        rec["span"] = span
    ctx = _context.current_context()
    if ctx is not None:
        rec["trace"] = ctx.trace_id
    rec.update(fields)
    try:
        line = json.dumps(rec, default=str)
    except (TypeError, ValueError):  # pragma: no cover - default=str
        return
    try:
        with cfg._lock:
            cfg.sink().write(line + "\n")
    except (OSError, ValueError):
        pass


def debug(event: str, /, **fields) -> None:
    log("debug", event, **fields)


def info(event: str, /, **fields) -> None:
    log("info", event, **fields)


def warning(event: str, /, **fields) -> None:
    log("warning", event, **fields)


def error(event: str, /, **fields) -> None:
    log("error", event, **fields)
