"""Nestable tracing spans with a thread-safe in-process collector.

A *span* brackets one pipeline phase (``with span("route_row_links")``)
and records wall time, custom attributes, and ad-hoc counts.  Spans
nest: entering a span inside another makes it a child, so one traced
run yields a tree mirroring the pipeline's call structure
(build -> pack_channels -> ..., validate -> ..., measure -> ...).

Tracing is **off by default** and the disabled path is a single module
global check returning a shared no-op span, so instrumentation costs
~nothing unless :func:`enable` was called.  The collector keeps one
span stack per thread (spans opened on different threads never
interleave into each other's trees) and guards the shared root list
with a lock, so concurrent traced runs are safe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanRecord",
    "current_span_name",
    "enable",
    "disable",
    "enabled",
    "span",
    "attach",
    "trace_roots",
    "reset_trace",
    "phase_totals",
    "format_span_tree",
    "span_names",
    "find_spans",
]

_enabled = False


@dataclass(slots=True)
class SpanRecord:
    """One completed (or in-flight) span: a node of the trace tree."""

    name: str
    attrs: dict
    start: float = 0.0
    duration: float = 0.0
    counts: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start,
            "duration_ms": round(self.duration * 1e3, 4),
            "attrs": dict(self.attrs),
            "counts": dict(self.counts),
            "children": [c.as_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        """Rebuild a span tree from its :meth:`as_dict` form.

        This is how worker processes ship their span forests home:
        serialize with ``as_dict``, rebuild in the parent, re-root
        under a per-worker span (see :func:`attach`).
        """
        return cls(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            start=float(data.get("start_s", 0.0)),
            duration=float(data.get("duration_ms", 0.0)) / 1e3,
            counts=dict(data.get("counts", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def self_time(self) -> float:
        """Duration minus time attributed to child spans."""
        return self.duration - sum(c.duration for c in self.children)

    def end(self) -> float:
        """``start + duration``: when the span closed (monotonic)."""
        return self.start + self.duration

    def walk(self):
        """Depth-first iterator over this span and every descendant."""
        stack = [self]
        while stack:
            rec = stack.pop()
            yield rec
            stack.extend(reversed(rec.children))


class _Collector:
    """Thread-safe span sink: per-thread stacks, shared root list."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roots: list[SpanRecord] = []
        self._local = threading.local()

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def push(self, rec: SpanRecord) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(rec)
        else:
            with self._lock:
                self._roots.append(rec)
        stack.append(rec)

    def pop(self, rec: SpanRecord) -> None:
        stack = self._stack()
        # Pop back to (and including) rec; tolerates a span closed out
        # of order rather than corrupting the tree.
        while stack:
            if stack.pop() is rec:
                break

    def roots(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
        self._local = threading.local()


_collector = _Collector()


class Span:
    """Context manager recording one :class:`SpanRecord`."""

    __slots__ = ("_rec",)

    def __init__(self, name: str, attrs: dict):
        self._rec = SpanRecord(name=name, attrs=attrs)

    def __enter__(self) -> "Span":
        self._rec.start = time.perf_counter()
        _collector.push(self._rec)
        return self

    def __exit__(self, *exc) -> bool:
        self._rec.duration = time.perf_counter() - self._rec.start
        _collector.pop(self._rec)
        return False

    def set(self, **attrs) -> "Span":
        self._rec.attrs.update(attrs)
        return self

    def add(self, key: str, n: int = 1) -> "Span":
        counts = self._rec.counts
        counts[key] = counts.get(key, 0) + n
        return self

    @property
    def record(self) -> SpanRecord:
        return self._rec


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self

    def add(self, key, n=1):
        return self


NOOP_SPAN = _NoopSpan()


def span(name: str, /, **attrs):
    """Open a span named ``name``; a no-op unless tracing is enabled.

    The name is positional-only, so ``name=...`` is a legal attribute
    (``span("build", name=spec.name)``).
    """
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def attach(rec: SpanRecord) -> None:
    """Graft an already-built span tree into the live trace.

    The subtree lands under the innermost span currently open on this
    thread, or as a new root when none is open.  This is the parent
    side of cross-process tracing: worker forests come home as dicts,
    are rebuilt with :meth:`SpanRecord.from_dict`, wrapped in a
    per-worker span, and attached under the orchestrating span.
    """
    if not _enabled:
        return
    stack = _collector._stack()
    if stack:
        stack[-1].children.append(rec)
    else:
        with _collector._lock:
            _collector._roots.append(rec)


def current_span_name() -> str | None:
    """The innermost span open on this thread, or None.

    This is the span context the structured logger stamps on every
    record: a log line emitted inside ``with span("build")`` carries
    ``"span": "build"`` without the call sites threading anything
    through.  Returns None while tracing is disabled or outside any
    span.
    """
    if not _enabled:
        return None
    stack = _collector._stack()
    return stack[-1].name if stack else None


def enable() -> None:
    """Turn on span collection (and the ``obs`` metric helpers)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def trace_roots() -> list[SpanRecord]:
    """The collected root spans (each a tree), in start order."""
    return _collector.roots()


def reset_trace() -> None:
    """Drop all collected spans (the enabled flag is untouched)."""
    _collector.reset()


def span_names(roots: list[SpanRecord] | None = None) -> set[str]:
    """The set of span names appearing anywhere in the forest.

    The request-trace tests compare these sets across worker counts:
    the names a request produces must not depend on which process
    built the layout.
    """
    names: set[str] = set()
    for root in roots if roots is not None else trace_roots():
        for rec in root.walk():
            names.add(rec.name)
    return names


def find_spans(
    name: str, roots: list[SpanRecord] | None = None
) -> list[SpanRecord]:
    """Every span named ``name`` in the forest, depth-first order."""
    found: list[SpanRecord] = []
    for root in roots if roots is not None else trace_roots():
        for rec in root.walk():
            if rec.name == name:
                found.append(rec)
    return found


def phase_totals(
    roots: list[SpanRecord] | None = None,
) -> dict[str, dict]:
    """Aggregate the span forest by span name.

    Returns ``{name: {"calls", "total_s", "self_s"}}`` where ``self_s``
    excludes time spent in child spans -- the number a phase-timing
    breakdown should rank by.
    """
    totals: dict[str, dict] = {}

    def visit(rec: SpanRecord) -> None:
        t = totals.setdefault(
            rec.name, {"calls": 0, "total_s": 0.0, "self_s": 0.0}
        )
        t["calls"] += 1
        t["total_s"] += rec.duration
        t["self_s"] += rec.self_time()
        for c in rec.children:
            visit(c)

    for r in roots if roots is not None else trace_roots():
        visit(r)
    return totals


def format_span_tree(
    roots: list[SpanRecord] | None = None, *, indent: str = "  "
) -> str:
    """Render the span forest as indented ``name  time  attrs`` lines."""
    lines: list[str] = []

    def visit(rec: SpanRecord, depth: int) -> None:
        extras = []
        if rec.attrs:
            extras.append(
                " ".join(f"{k}={v}" for k, v in sorted(rec.attrs.items()))
            )
        if rec.counts:
            extras.append(
                " ".join(f"{k}:{v}" for k, v in sorted(rec.counts.items()))
            )
        suffix = ("  [" + "; ".join(extras) + "]") if extras else ""
        lines.append(
            f"{indent * depth}{rec.name}  {rec.duration * 1e3:.2f}ms{suffix}"
        )
        for c in rec.children:
            visit(c, depth + 1)

    for r in roots if roots is not None else trace_roots():
        visit(r, 0)
    return "\n".join(lines)
