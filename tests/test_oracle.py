"""The brute-force oracle agrees with the production validator."""

import pytest
from hypothesis import given, settings

from repro.core import layout_ccc, layout_folded_hypercube, layout_hypercube, layout_kary
from repro.core.folding import fold_layout
from repro.core.threedee import layout_product_3d
from repro.grid.oracle import OracleViolation, oracle_validate
from repro.grid.validate import LayoutError, validate_layout
from repro.topology import Ring

# Reuse the random-spec strategies from the builder property tests.
from test_properties_builder import block_specs, grid_specs
from repro.core.builder import build_orthogonal_layout


class TestOracleOnSchemes:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: layout_kary(3, 2, layers=4),
            lambda: layout_hypercube(5, layers=4),
            lambda: layout_ccc(3, layers=4),
            lambda: layout_folded_hypercube(4, layers=4),
            lambda: fold_layout(layout_hypercube(6, layers=2), 8),
            lambda: layout_product_3d(Ring(3), Ring(3), Ring(3), layers=6),
        ],
        ids=["kary", "hypercube", "ccc", "folded-hc", "fold", "3d"],
    )
    def test_all_constructions_pass_oracle(self, factory):
        lay = factory()
        oracle_validate(lay)

    def test_oracle_catches_overlap(self):
        from repro.grid.geometry import Rect, Segment
        from repro.grid.layout import GridLayout
        from repro.grid.wire import Wire

        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 2, 1, 1))
        lay.place("b", Rect(9, 2, 1, 1))
        lay.add_wire(Wire("a", "b", [Segment.make(1, 2, 9, 2, 1)]))
        lay.add_wire(Wire("a", "b", [Segment.make(1, 2, 9, 2, 1)], edge_key=1))
        with pytest.raises(OracleViolation, match="grid edge"):
            oracle_validate(lay)

    def test_oracle_catches_knock_knee(self):
        from repro.grid.geometry import Rect, Segment
        from repro.grid.layout import GridLayout
        from repro.grid.wire import Wire

        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(4, 9, 1, 1))
        lay.place("c", Rect(9, 4, 1, 1))
        lay.place("d", Rect(4, 0, 1, 1))
        lay.add_wire(Wire("a", "b", [Segment.make(1, 5, 5, 5, 1),
                                     Segment.make(5, 5, 5, 9, 2)]))
        lay.add_wire(Wire("c", "d", [Segment.make(9, 5, 5, 5, 1),
                                     Segment.make(5, 5, 5, 1, 2)]))
        # Both wires claim the via z-edge (5,5,1)-(5,5,2) -- the oracle
        # reports whichever occupancy rule it hits first.
        with pytest.raises(OracleViolation, match="turn/via|grid edge"):
            oracle_validate(lay)

    def test_oracle_allows_crossings(self):
        from repro.grid.geometry import Rect, Segment
        from repro.grid.layout import GridLayout
        from repro.grid.wire import Wire

        lay = GridLayout(layers=2)
        lay.place("a", Rect(0, 4, 1, 1))
        lay.place("b", Rect(9, 4, 1, 1))
        lay.place("c", Rect(4, 0, 1, 1))
        lay.place("d", Rect(4, 9, 1, 1))
        lay.add_wire(Wire("a", "b", [Segment.make(1, 5, 9, 5, 1)]))
        lay.add_wire(Wire("c", "d", [Segment.make(5, 1, 5, 9, 2)]))
        oracle_validate(lay)


class TestOracleAgreement:
    @given(grid_specs())
    @settings(max_examples=60, deadline=None)
    def test_verdicts_match_on_random_specs(self, spec):
        lay = build_orthogonal_layout(spec)
        # The production validator passes these by construction; the
        # oracle must agree.
        validate_layout(lay)
        oracle_validate(lay)

    @given(block_specs())
    @settings(max_examples=40, deadline=None)
    def test_verdicts_match_on_block_specs(self, spec):
        lay = build_orthogonal_layout(spec)
        validate_layout(lay)
        oracle_validate(lay)
