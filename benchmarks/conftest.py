"""Benchmark harness plumbing.

Each bench regenerates one paper artifact (table/figure/closed form)
and reports paper-vs-measured rows.  Reports are printed (visible with
``pytest -s``) and appended to ``benchmarks/results/<bench>.txt`` so
EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import format_table

RESULTS = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture
def report(request):
    """report(title, headers, rows): print + persist a comparison table."""
    RESULTS.mkdir(exist_ok=True)
    out_file = RESULTS / f"{request.node.module.__name__}.txt"

    def _report(title: str, headers, rows) -> None:
        text = f"\n== {title} ==\n{format_table(headers, rows)}\n"
        print(text)
        with out_file.open("a") as fh:
            fh.write(text)

    return _report


@pytest.fixture(scope="session", autouse=True)
def _fresh_results():
    """Start each bench session with clean result files."""
    if RESULTS.exists():
        for f in RESULTS.glob("*.txt"):
            f.unlink()
    yield
