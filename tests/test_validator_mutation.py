"""Mutation agreement: the fast validator and the brute-force oracle
must return the same verdict on randomly corrupted layouts.

Starting from valid layouts, apply small random mutations (shift a
segment, change a layer, stretch a span).  Any given mutation may be
harmless or illegal; the property under test is *agreement* -- the
production validator (line sweeps, structural indexes) and the oracle
(exhaustive occupancy hashing) accept or reject together.  This is the
strongest check we have that the fast validator's cleverness doesn't
hide soundness holes.

Known, documented asymmetry: wires that *turn* at a point they share
with another wire's segment are judged by bend/via rules in the fast
validator and by point-occupancy rules in the oracle; both implement
the same model, so verdicts still agree.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import layout_kary
from repro.core.schemes import layout_generic_grid
from repro.grid.geometry import Segment
from repro.grid.layout import GridLayout
from repro.grid.oracle import OracleViolation, oracle_validate
from repro.grid.validate import LayoutError, validate_layout
from repro.grid.wire import Wire, WirePathError
from repro.topology import Hypercube, KAryNCube


def clone_layout(lay: GridLayout) -> GridLayout:
    from repro.grid.io import layout_from_json, layout_to_json

    return layout_from_json(layout_to_json(lay))


def mutate(lay: GridLayout, rng: random.Random) -> bool:
    """Apply one random mutation in place; returns False if the
    mutation could not be applied (e.g. it broke path connectivity and
    was rolled back)."""
    if not lay.wires:
        return False
    wi = rng.randrange(len(lay.wires))
    w = lay.wires[wi]
    si = rng.randrange(len(w.segments))
    s = w.segments[si]
    kind = rng.choice(["layer", "shift", "stretch"])
    try:
        if kind == "layer":
            new_layer = rng.randint(1, lay.layers)
            segs = list(w.segments)
            segs[si] = Segment(s.x1, s.y1, s.x2, s.y2, new_layer)
        elif kind == "shift":
            dx, dy = rng.choice([(1, 0), (-1, 0), (0, 1), (0, -1)])
            segs = list(w.segments)
            segs[si] = Segment.make(
                s.x1 + dx, s.y1 + dy, s.x2 + dx, s.y2 + dy, s.layer
            )
        else:  # stretch one endpoint along the segment axis
            delta = rng.choice([-1, 1])
            if s.horizontal:
                segs = list(w.segments)
                segs[si] = Segment.make(s.x1, s.y1, s.x2 + delta, s.y2, s.layer)
            else:
                segs = list(w.segments)
                segs[si] = Segment.make(s.x1, s.y1, s.x2, s.y2 + delta, s.layer)
        lay.wires[wi] = Wire(w.u, w.v, segs, edge_key=w.edge_key)
        return True
    except (WirePathError, ValueError):
        return False  # mutation produced a non-path; skip


def verdicts_agree(lay: GridLayout) -> tuple[bool, bool]:
    try:
        validate_layout(lay, check_pins=False, check_node_interference=True)
        fast_ok = True
    except LayoutError:
        fast_ok = False
    try:
        oracle_validate(lay)
        oracle_ok = True
    except OracleViolation:
        oracle_ok = False
    return fast_ok, oracle_ok


class TestMutationAgreement:
    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_kary_mutations(self, seed):
        rng = random.Random(seed)
        lay = clone_layout(layout_kary(3, 2, layers=4))
        for _ in range(rng.randint(1, 3)):
            mutate(lay, rng)
        fast_ok, oracle_ok = verdicts_agree(lay)
        assert fast_ok == oracle_ok, (
            f"verdicts diverge (fast={fast_ok}, oracle={oracle_ok}) "
            f"for seed {seed}"
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_hypercube_mutations(self, seed):
        rng = random.Random(seed)
        lay = clone_layout(layout_kary(4, 2, layers=2))
        mutate(lay, rng)
        fast_ok, oracle_ok = verdicts_agree(lay)
        assert fast_ok == oracle_ok

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_generic_grid_mutations(self, seed):
        rng = random.Random(seed)
        base = layout_generic_grid(Hypercube(3), layers=4)
        lay = clone_layout(base)
        for _ in range(2):
            mutate(lay, rng)
        fast_ok, oracle_ok = verdicts_agree(lay)
        assert fast_ok == oracle_ok

    def test_mutations_do_find_violations(self):
        """Sanity: the mutation space actually produces illegal layouts
        (otherwise agreement would be vacuous)."""
        rng = random.Random(0)
        rejected = 0
        for seed in range(60):
            rng = random.Random(seed)
            lay = clone_layout(layout_kary(3, 2, layers=4))
            mutate(lay, rng)
            fast_ok, _ = verdicts_agree(lay)
            rejected += not fast_ok
        assert rejected >= 5
