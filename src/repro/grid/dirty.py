"""Dirty-region tracking for incremental revalidation.

A :class:`DirtyTracker` rides on a :class:`~repro.grid.layout.GridLayout`
(lazily attached the first time ``validate_layout(..., incremental=True)``
is called) and records which *y-bands x layer ranges* each mutation
touched:

* :meth:`on_replace` (``GridLayout.replace_wire``) marks the old and
  new wire's extents dirty and updates the cached per-wire extent
  arrays in place;
* :meth:`on_add` (``GridLayout.add_wire``) marks the new wire's extent;
* :meth:`on_place` marks the new node rectangle's band;
* :meth:`mark_all` (``GridLayout.invalidate_table``) poisons the whole
  tracker, forcing the next incremental validation to fall back to a
  full sweep.

Correctness contract: after a *successful* validation, only conflicts
involving an element touched **since that validation** can newly
appear, and every such conflict's counterpart geometrically intersects
the dirty element's own band (conflicts require shared grid lines,
overlapping layer intervals at shared points, or overlapping
rectangles).  Re-validating the sub-layout of wires and nodes whose
extents intersect the dirty bands therefore decides the whole layout's
verdict -- *relative to the last successful validation*: conflicts
purely among untouched elements were already ruled out then.
"""

from __future__ import annotations

__all__ = ["DirtyTracker", "wire_extent"]


def wire_extent(wire) -> tuple[int, int, int, int]:
    """``(ymin, ymax, lmin, lmax)`` of one wire (mirrors the accel
    ``wire_extents`` kernel's per-wire semantics)."""
    if wire.riser is not None:
        _, y, zlo, zhi = wire.riser
        return (y, y, zlo, zhi)
    segs = wire.segments
    return (
        min(s.y1 for s in segs),
        max(s.y2 for s in segs),
        min(s.layer for s in segs),
        max(s.layer for s in segs),
    )


class DirtyTracker:
    """Touched y-bands x layer ranges since the last full validation."""

    __slots__ = ("full", "validated", "bands", "ymin", "ymax", "lmin", "lmax")

    #: Above this many distinct dirty bands the incremental path stops
    #: paying off (band bookkeeping itself becomes the cost) and the
    #: validator falls back to a full sweep.
    MAX_BANDS = 256

    def __init__(self) -> None:
        self.full = True
        self.validated = False
        self.bands: list[tuple[int, int, int, int]] = []
        self.ymin: list[int] = []
        self.ymax: list[int] = []
        self.lmin: list[int] = []
        self.lmax: list[int] = []

    # -- mutation hooks (called by GridLayout) --------------------------

    def on_add(self, wire) -> None:
        if self.full:
            return
        ext = wire_extent(wire)
        self.ymin.append(ext[0])
        self.ymax.append(ext[1])
        self.lmin.append(ext[2])
        self.lmax.append(ext[3])
        self.bands.append(ext)

    def on_replace(self, i: int, wire) -> None:
        if self.full:
            return
        if i >= len(self.ymin):  # pragma: no cover - defensive
            self.mark_all()
            return
        self.bands.append(
            (self.ymin[i], self.ymax[i], self.lmin[i], self.lmax[i])
        )
        ext = wire_extent(wire)
        self.ymin[i], self.ymax[i], self.lmin[i], self.lmax[i] = ext
        self.bands.append(ext)

    def on_place(self, rect, layer: int) -> None:
        if self.full:
            return
        self.bands.append((rect.y0, rect.y1, layer, layer))

    def mark_all(self) -> None:
        """Poison the tracker: next incremental call does a full sweep."""
        self.full = True
        self.bands = []

    # -- validator protocol ---------------------------------------------

    def needs_full(self) -> bool:
        return self.full or not self.validated

    def reset_after_full(self, layout) -> None:
        """Record a successful full validation: capture per-wire extents
        from the (already hot) wire table and arm incremental mode."""
        from repro import accel

        table = layout.wire_table()
        ext = accel.get_backend().wire_extents(table)
        self.ymin, self.ymax, self.lmin, self.lmax = (list(a) for a in ext)
        self.full = False
        self.validated = True
        self.bands = []

    def clear_bands(self) -> None:
        """Record a successful incremental validation."""
        self.bands = []

    def coalesced_bands(self) -> list[tuple[int, int, int, int]]:
        """The dirty set with duplicate bands removed (stable order)."""
        seen: set[tuple[int, int, int, int]] = set()
        out: list[tuple[int, int, int, int]] = []
        for band in self.bands:
            if band not in seen:
                seen.add(band)
                out.append(band)
        return out

    def select_wires(self, bands) -> list[int]:
        """Indices of wires whose extent intersects any dirty band
        (closed intervals: a conflict needs only a shared grid point)."""
        ymin, ymax = self.ymin, self.ymax
        lmin, lmax = self.lmin, self.lmax
        out = []
        for i in range(len(ymin)):
            for y0, y1, l0, l1 in bands:
                if ymax[i] >= y0 and ymin[i] <= y1 and (
                    lmax[i] >= l0 and lmin[i] <= l1
                ):
                    out.append(i)
                    break
        return out
