"""Claims (1)-(4) of the introduction, measured end-to-end.

For a network laid out under the multilayer scheme with L layers vs:

(1) area shrinks ~L^2/4 x (vs the same scheme at L = 2);
(2) volume shrinks ~L/2 x;
(3) max wire length shrinks ~L/2 x;
(4) routing-path wire totals shrink ~L/2 x;

while the *folding* baseline only delivers L/2 on area and nothing on
volume/wire, and the collinear-multilayer baseline at most L/2 on area.

Measured ratios carry node-size and ceiling slack, so the assertions
bound them between the ideal and a conservative fraction of it; benches
print the full sweeps.
"""

import pytest

from repro.core import (
    collinear_multilayer_metrics,
    fold_metrics,
    layout_collinear_network,
    layout_hypercube,
    layout_kary,
    measure,
)
from repro.core.metrics import weighted_diameter
from repro.topology import Hypercube


class TestClaimsHypercube:
    """Measured on the 10-cube with minimal (pin-limited) node squares,
    the smallest size where wiring clearly dominates node area."""

    N_DIM = 10
    L = 8

    @pytest.fixture(scope="class")
    def sweep(self):
        base = layout_hypercube(self.N_DIM, layers=2, node_side="min")
        multi = layout_hypercube(self.N_DIM, layers=self.L, node_side="min")
        return measure(base), measure(multi), base, multi

    def test_claim1_area(self, sweep):
        base, multi, *_ = sweep
        ratio = base.area / multi.area
        ideal = self.L * self.L / 4
        assert 1.5 < ratio <= ideal * 1.05

    def test_claim2_volume(self, sweep):
        base, multi, *_ = sweep
        ratio = base.volume / multi.volume
        ideal = self.L / 2
        assert 1.0 < ratio <= ideal * 1.05

    def test_claim3_max_wire(self, sweep):
        base, multi, *_ = sweep
        ratio = base.max_wire / multi.max_wire
        assert 1.0 < ratio <= self.L / 2 * 1.1

    def test_claim4_path_wire(self, sweep):
        *_, base_lay, multi_lay = sweep
        d2 = weighted_diameter(base_lay, max_sources=8)
        dL = weighted_diameter(multi_lay, max_sources=8)
        assert 1.0 < d2 / dL <= self.L / 2 * 1.1

    def test_multilayer_beats_folding_on_area(self, sweep):
        base, multi, *_ = sweep
        folded = fold_metrics(base, self.L)
        assert multi.area < folded.area

    def test_multilayer_beats_folding_on_volume_and_wire(self, sweep):
        base, multi, *_ = sweep
        folded = fold_metrics(base, self.L)
        assert multi.volume < folded.volume
        assert multi.max_wire < folded.max_wire

    def test_multilayer_beats_collinear_baseline(self):
        base_col = measure(layout_collinear_network(Hypercube(self.N_DIM)))
        col = collinear_multilayer_metrics(base_col, self.L)
        multi = measure(layout_hypercube(self.N_DIM, layers=self.L))
        assert multi.area < col.area
        assert multi.volume < col.volume


class TestClaimsKAry:
    def test_area_trend_monotone_in_l(self):
        areas = {L: layout_kary(4, 4, layers=L).area for L in (2, 4, 8)}
        assert areas[2] > areas[4] > areas[8]

    def test_ratio_approaches_quarter_l_squared_with_size(self):
        """Node-size slack shrinks as k grows: the measured area ratio
        between L=2 and L=8 climbs toward 16."""
        small = layout_kary(3, 4, layers=2).area / layout_kary(3, 4, layers=8).area
        big = layout_kary(5, 4, layers=2).area / layout_kary(5, 4, layers=8).area
        assert big > small
        assert big <= 16.05
