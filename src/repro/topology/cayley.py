"""Cayley-graph networks (Section 4.3's closing remark, refs [2, 15, 16]).

The paper notes that its strategies extend to star graphs and other
Cayley graphs.  The key structural fact (used by ref. [30] and by our
`repro.core` layouts) is that each of these graphs decomposes into n
copies of its (n-1)-symbol version -- cluster = permutations sharing a
last symbol -- whose quotient is a complete graph K_n with uniform link
multiplicity.  :meth:`CayleyGraph.last_symbol_partition` exposes that
decomposition generically; tests verify the quotient structure.

Nodes are permutation tuples of ``(0, ..., n-1)``; generators act on
*positions*.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = [
    "CayleyGraph",
    "StarGraph",
    "PancakeGraph",
    "BubbleSortGraph",
    "TranspositionNetwork",
    "StarConnectedCycles",
]


class CayleyGraph(Network):
    """A Cayley graph of the symmetric group S_n under position-action
    generators.  Subclasses supply the generator set as a list of
    functions tuple -> tuple (each an involution or paired with its
    inverse so the graph is undirected)."""

    def __init__(self, n: int, name: str):
        if n < 2:
            raise ValueError("n >= 2")
        self.n = n
        self.name = name

    def generators(self) -> list:
        raise NotImplementedError

    def _build_nodes(self) -> Sequence[Node]:
        return list(permutations(range(self.n)))

    def _build_edges(self) -> Sequence[Edge]:
        edges: set[tuple[Node, Node]] = set()
        gens = self.generators()
        for p in self.nodes:
            for g in gens:
                q = g(p)
                if q == p:
                    continue
                edges.add((p, q) if p < q else (q, p))
        return sorted(edges)

    def last_symbol_partition(self) -> Partition:
        """Cluster permutations by their last symbol: n clusters, each a
        copy of the (n-1)-symbol graph, quotient K_n."""
        return Partition(
            {p: p[-1] for p in self.nodes}, name=f"{self.name}-last-symbol"
        )


def _swap(i: int, j: int):
    def g(p: tuple) -> tuple:
        q = list(p)
        q[i], q[j] = q[j], q[i]
        return tuple(q)

    return g


def _prefix_reversal(i: int):
    def g(p: tuple) -> tuple:
        return p[: i + 1][::-1] + p[i + 1 :]

    return g


class StarGraph(CayleyGraph):
    """S_n star graph [2]: swap position 0 with position i, i = 1..n-1."""

    def __init__(self, n: int):
        super().__init__(n, f"star({n})")

    def generators(self) -> list:
        return [_swap(0, i) for i in range(1, self.n)]


class PancakeGraph(CayleyGraph):
    """Pancake graph [2]: prefix reversals of length 2..n."""

    def __init__(self, n: int):
        super().__init__(n, f"pancake({n})")

    def generators(self) -> list:
        return [_prefix_reversal(i) for i in range(1, self.n)]


class BubbleSortGraph(CayleyGraph):
    """Bubble-sort graph [2]: adjacent transpositions."""

    def __init__(self, n: int):
        super().__init__(n, f"bubble-sort({n})")

    def generators(self) -> list:
        return [_swap(i, i + 1) for i in range(self.n - 1)]


class TranspositionNetwork(CayleyGraph):
    """Transposition network [16]: all transpositions."""

    def __init__(self, n: int):
        super().__init__(n, f"transposition({n})")

    def generators(self) -> list:
        return [
            _swap(i, j) for i in range(self.n) for j in range(i + 1, self.n)
        ]


class StarConnectedCycles(Network):
    """Star-connected cycles (SCC) [15]: each star-graph node replaced
    by an (n-1)-node cycle; cycle position i carries the dimension-i
    star link (the generator swapping positions 0 and i)."""

    def __init__(self, n: int):
        if n < 3:
            raise ValueError("SCC needs n >= 3")
        self.n = n
        self.star = StarGraph(n)
        self.name = f"SCC({n})"

    def _build_nodes(self) -> Sequence[Node]:
        return [(p, i) for p in permutations(range(self.n)) for i in range(1, self.n)]

    def _build_edges(self) -> Sequence[Edge]:
        n = self.n
        edges: list[Edge] = []
        cycle = list(range(1, n))
        for p in permutations(range(n)):
            if len(cycle) > 1:
                for a, b in zip(cycle, cycle[1:]):
                    edges.append(((p, a), (p, b)))
                if len(cycle) > 2:
                    edges.append(((p, cycle[0]), (p, cycle[-1])))
            for i in range(1, n):
                q = list(p)
                q[0], q[i] = q[i], q[0]
                q = tuple(q)
                if p < q:
                    edges.append(((p, i), (q, i)))
        return edges

    def cluster_partition(self) -> Partition:
        return Partition({v: v[0] for v in self.nodes}, name="scc-cycles")
