"""Layout model descriptors (Section 2's three models, as objects).

A model bundles its parameters with its validation policy, so code can
say *which* model a layout claims to satisfy and have that claim
checked:

* :class:`ThompsonModel` -- two wiring layers, one active layer, H/V
  layer parity, knock-knees forbidden (§2.1);
* :class:`MultilayerGridModel` -- L wiring layers, nodes in the first
  layer (§2.2's 2-D variant); parity is optional (a scheme convention);
* :class:`Multilayer3DModel` -- L wiring layers, up to L_A active
  layers, risers allowed (§2.2's 3-D variant).

``model_of(layout)`` infers the strongest model a layout satisfies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.layout import GridLayout
from repro.grid.validate import LayoutError, validate_layout

__all__ = [
    "ThompsonModel",
    "MultilayerGridModel",
    "Multilayer3DModel",
    "model_of",
]


@dataclass(frozen=True, slots=True)
class ThompsonModel:
    """The classical 2-layer model of [23]."""

    layers: int = 2

    @property
    def name(self) -> str:
        return "Thompson"

    def check(self, layout: GridLayout) -> dict:
        if layout.layers != 2:
            raise LayoutError(
                f"Thompson model requires L = 2 (layout claims "
                f"{layout.layers})"
            )
        active = {p.layer for p in layout.placements.values()}
        if active - {1}:
            raise LayoutError(
                f"Thompson model embeds nodes in the plane (found active "
                f"layers {sorted(active)})"
            )
        if any(w.riser is not None for w in layout.wires):
            raise LayoutError("Thompson model has no z-direction wires")
        return validate_layout(layout, check_parity=True)


@dataclass(frozen=True, slots=True)
class MultilayerGridModel:
    """The paper's multilayer 2-D grid model: L layers, planar nodes."""

    layers: int

    @property
    def name(self) -> str:
        return f"multilayer 2-D grid (L={self.layers})"

    def check(self, layout: GridLayout) -> dict:
        if layout.layers > self.layers:
            raise LayoutError(
                f"layout budget {layout.layers} exceeds the model's "
                f"L = {self.layers}"
            )
        active = {p.layer for p in layout.placements.values()}
        if active - {1}:
            raise LayoutError(
                "the 2-D variant embeds nodes in the first layer "
                f"(found active layers {sorted(active)})"
            )
        if any(w.riser is not None for w in layout.wires):
            raise LayoutError(
                "riser wires require the 3-D variant of the model"
            )
        return validate_layout(layout)


@dataclass(frozen=True, slots=True)
class Multilayer3DModel:
    """The multilayer 3-D grid model: L layers, L_A active layers."""

    layers: int
    active_layers: int

    @property
    def name(self) -> str:
        return f"multilayer 3-D grid (L={self.layers}, L_A={self.active_layers})"

    def check(self, layout: GridLayout) -> dict:
        if layout.layers > self.layers:
            raise LayoutError(
                f"layout budget {layout.layers} exceeds the model's "
                f"L = {self.layers}"
            )
        active = {p.layer for p in layout.placements.values()}
        if len(active) > self.active_layers:
            raise LayoutError(
                f"{len(active)} active layers used but the model allows "
                f"L_A = {self.active_layers}"
            )
        return validate_layout(layout)


def model_of(layout: GridLayout):
    """The strongest of the three models ``layout`` satisfies."""
    active = {p.layer for p in layout.placements.values()} or {1}
    has_risers = any(w.riser is not None for w in layout.wires)
    if len(active) > 1 or has_risers or active != {1}:
        model = Multilayer3DModel(layout.layers, len(active))
        model.check(layout)
        return model
    if layout.layers == 2:
        try:
            model = ThompsonModel()
            model.check(layout)
            return model
        except LayoutError:
            pass  # e.g. parity not respected: still a 2-layer grid layout
    model = MultilayerGridModel(layout.layers)
    model.check(layout)
    return model
