"""Exact minimum cutwidth: the true optimum for collinear layouts.

A collinear layout under a node order needs exactly max-cut(order)
tracks (left-edge optimality), so the *minimum over orders* -- the
graph's cutwidth -- is the best any collinear layout can do.  This
module computes it exactly by dynamic programming over vertex subsets:

    dp[S] = min over v in S of max(dp[S - v], cut(S))

where ``cut(S)`` counts edges between S and its complement.  O(2^n n)
time with bitmask adjacency; practical to ~20 nodes, which covers the
instances needed to certify the paper's orders:

* the ring's 2 tracks and K_N's |N^2/4| are exactly optimal;
* binary order achieves the hypercube's true cutwidth (|2N/3|,
  Harper); the 3-ary 2-cube's 8 tracks are exactly optimal;
* the left-edge GHC(4,4) layout (18 tracks, beating the paper's
  recurrence value of 20) is certified optimal too.

The DP is the measured hot path of the differential fuzzer and the
optimality benchmarks, so the inner minimization is organized around a
lowest-set-bit carry recurrence: the min of ``dp`` over a state's
immediate subsets splits into "remove a high (offset) bit", maintained
as an elementwise-min *carry* array combined at C speed with
``map(min, ...)`` over contiguous dp rows, plus "remove a low bit",
scanned only over a small base block (with an early exit once the min
can no longer exceed ``cut(S)``).  Unweighted cuts fold into a single
``int.bit_count`` per state.
"""

from __future__ import annotations

from repro import obs
from repro.topology.base import Network

try:  # vectorized DP path; the pure-Python recurrence is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

__all__ = [
    "DP_NODE_LIMIT",
    "exact_cutwidth",
    "optimal_order",
    "cutwidth_certificate",
]

#: Largest node count any exact-cutwidth entry point accepts by
#: default.  The DP holds 2^n states (plus an equally sized cut table
#: and carry rows), so 20 nodes ~ 1M states is where both memory and
#: time stop being interactive.  All of :func:`exact_cutwidth`,
#: :func:`optimal_order` and :func:`cutwidth_certificate` share this
#: cap -- they run the same DP, so there is no reason for their limits
#: to differ.
DP_NODE_LIMIT = 20

_INF = 1 << 60

# Block size (in bits) below which the carry recursion switches to the
# plain per-state scan; 6 keeps the Python-level inner loop to <= 6
# candidates while the 2^(n-6) block recursion stays negligible.
_BASE_BITS = 6


def _check_limit(fn_name: str, n: int, limit: int) -> None:
    if n > limit:
        raise ValueError(
            f"{fn_name}: {n} nodes exceed the exact-DP node limit "
            f"({limit}); the DP holds 2^n states"
        )


def _bit_adjacency(network: Network) -> list[int]:
    index = network.index
    adj = [0] * network.num_nodes
    for u, v in network.edges:
        iu, iv = index[u], index[v]
        adj[iu] |= 1 << iv
        adj[iv] |= 1 << iu
    return adj


def _edge_weights(network: Network) -> dict[tuple[int, int], int]:
    """Multigraph support: parallel edges each count toward the cut."""
    index = network.index
    weights: dict[tuple[int, int], int] = {}
    for u, v in network.edges:
        iu, iv = sorted((index[u], index[v]))
        weights[(iu, iv)] = weights.get((iu, iv), 0) + 1
    return weights


def _cut_table(network: Network, n: int) -> list[int]:
    """``cut[S]`` (weighted edges between S and its complement) for all
    2^n subsets, by the lowest-set-bit recurrence::

        cut(S) = cut(S \\ v) + deg(v) - 2 * deg(v, S \\ v),  v = lowbit(S)
    """
    size = 1 << n
    cut = [0] * size
    weights = _edge_weights(network)
    if all(wt == 1 for wt in weights.values()):
        # Simple graph: deg(v, prev) is a popcount of masked adjacency.
        adj = _bit_adjacency(network)
        deg = [m.bit_count() for m in adj]
        for s in range(1, size):
            v = (s & -s).bit_length() - 1
            prev = s & (s - 1)
            cut[s] = cut[prev] + deg[v] - 2 * (adj[v] & prev).bit_count()
    else:
        wadj: list[dict[int, int]] = [dict() for _ in range(n)]
        for (iu, iv), wt in weights.items():
            wadj[iu][iv] = wt
            wadj[iv][iu] = wt
        for s in range(1, size):
            v = (s & -s).bit_length() - 1
            prev = s & (s - 1)
            delta = 0
            for w, wt in wadj[v].items():
                delta += -wt if (prev >> w) & 1 else wt
            cut[s] = cut[prev] + delta
    return cut


def _fill_block(
    dp: list[int], cut: list[int], base: int, k: int, carry: list[int]
) -> None:
    """Fill ``dp[base : base + 2^k]`` given the offset-bit carry.

    ``carry[r]`` is the min of ``dp`` over the states reached from
    ``base + r`` by removing one of the bits of ``base`` (the already
    recursed-past "offset" bits); removals of bits inside ``r`` are
    resolved here, high bit by elementwise min, low bits by the base
    scan.
    """
    while k > _BASE_BITS:
        k -= 1
        half = 1 << k
        _fill_block(dp, cut, base, k, carry[:half])
        # States in the upper half may also drop the block's top bit,
        # landing on the just-filled lower half: fold it into the carry.
        carry = list(map(min, carry[half:], dp[base:base + half]))
        base += half
    for r in range(1 << k):
        s = base + r
        if not s:
            continue  # dp[0] = 0, set by the caller
        cs = cut[s]
        best = carry[r]
        if best > cs:
            t = r
            while t:
                b = t & -t
                t -= b
                cand = dp[s - b]
                if cand < best:
                    if cand <= cs:
                        best = cs
                        break
                    best = cand
        dp[s] = cs if best < cs else best


def _cutwidth_dp_python(network: Network, n: int) -> tuple[list[int], list[int]]:
    size = 1 << n
    cut = _cut_table(network, n)
    dp = [0] * size
    _fill_block(dp, cut, 0, n, [_INF] * size)
    dp[0] = 0
    return dp, cut


def _cutwidth_dp_numpy(network: Network, n: int):
    """Vectorized DP: popcount layers, gather-min over bit removals.

    ``dp`` at popcount k depends only on popcount k-1, so each layer is
    one fancy-indexed gather per bit position -- O(2^n n) element ops
    all at C speed instead of an interpreted inner loop.
    """
    size = 1 << n
    states = _np.arange(size, dtype=_np.int64)
    cut = _np.zeros(size, dtype=_np.int64)
    for (iu, iv), wt in _edge_weights(network).items():
        differs = ((states >> iu) ^ (states >> iv)) & 1
        cut += wt * differs
    pc = _np.zeros(size, dtype=_np.int64)
    for u in range(n):
        pc += (states >> u) & 1
    order = _np.argsort(pc, kind="stable")
    bounds = _np.searchsorted(pc[order], _np.arange(n + 2))
    dp = _np.zeros(size, dtype=_np.int64)
    for k in range(1, n + 1):
        layer = order[bounds[k]:bounds[k + 1]]
        best = _np.full(len(layer), _INF, dtype=_np.int64)
        for u in range(n):
            bit = 1 << u
            has = (layer & bit) != 0
            if not has.any():
                continue
            members = layer[has]
            best[has] = _np.minimum(best[has], dp[members ^ bit])
        dp[layer] = _np.maximum(cut[layer], best)
    return dp, cut


def _cutwidth_dp(network: Network, n: int):
    """The full ``(dp, cut)`` tables over all 2^n vertex subsets.

    Both tables index by subset bitmask; the numpy path returns ndarray
    rows, the fallback plain lists -- callers only index and compare.
    """
    if _np is not None:
        return _cutwidth_dp_numpy(network, n)
    return _cutwidth_dp_python(network, n)


def exact_cutwidth(network: Network, *, limit: int = DP_NODE_LIMIT) -> int:
    """The graph's exact cutwidth (minimum collinear track count).

    Raises ``ValueError`` beyond ``limit`` nodes (default
    :data:`DP_NODE_LIMIT`; the DP holds 2^n entries).  Parallel edges
    each count toward the cut.
    """
    n = network.num_nodes
    _check_limit("exact_cutwidth", n, limit)
    if n <= 1:
        return 0
    size = 1 << n
    with obs.span("exact_cutwidth", n=n, states=size):
        dp, _ = _cutwidth_dp(network, n)
    obs.count("cutwidth.dp_runs")
    obs.count("cutwidth.dp_states", size)
    return int(dp[size - 1])


def cutwidth_certificate(
    network: Network, *, limit: int = DP_NODE_LIMIT
) -> tuple[int, list]:
    """``(cutwidth, order)`` with the order achieving the cutwidth.

    One DP run instead of the two that separate
    :func:`exact_cutwidth` + :func:`optimal_order` calls would cost --
    the differential fuzzer certifies every small network this way, so
    the saving is on its hot path.
    """
    n = network.num_nodes
    _check_limit("cutwidth_certificate", n, limit)
    order = optimal_order(network, limit=limit)
    if not order:
        return 0, order
    # The order's max cut IS the cutwidth (backtracking preserves the
    # dp optimum); recompute it directly instead of re-running the DP.
    # Each edge contributes +1 to every gap it spans: accumulate the
    # cut profile as a difference array and prefix-sum it, O(E + n)
    # instead of the O(E * span) of walking every gap per edge.
    pos = {v: p for p, v in enumerate(order)}
    diff = [0] * (len(order) + 1)
    for u, v in network.edges:
        pu, pv = pos[u], pos[v]
        if pu > pv:
            pu, pv = pv, pu
        diff[pu] += 1
        diff[pv] -= 1
    best = 0
    running = 0
    for d in diff[:-1]:
        running += d
        if running > best:
            best = running
    return best, order


def optimal_order(network: Network, *, limit: int = DP_NODE_LIMIT) -> list:
    """An order achieving the exact cutwidth, by DP backtracking."""
    n = network.num_nodes
    _check_limit("optimal_order", n, limit)
    if n == 0:
        return []
    nodes = list(network.nodes)
    size = 1 << n
    with obs.span("optimal_order", n=n, states=size):
        dp, cut = _cutwidth_dp(network, n)
    obs.count("cutwidth.dp_runs")
    obs.count("cutwidth.dp_states", size)

    # Backtrack: peel off a final vertex that realizes dp[S].
    order_rev: list[int] = []
    s = size - 1
    while s:
        t = s
        while t:
            b = t & -t
            t -= b
            if max(dp[s - b], cut[s]) == dp[s]:
                order_rev.append(b.bit_length() - 1)
                s -= b
                break
        else:  # pragma: no cover - dp invariant guarantees a choice
            raise AssertionError("dp backtrack failed")
    return [nodes[i] for i in reversed(order_rev)]
