"""Pure-python reference implementations of the accel kernels.

Every kernel here defines the *semantics* the numpy backend
(:mod:`repro.accel.vector`) must reproduce exactly; the parity suite
(``tests/test_accel.py``) compares the two over the network zoo and the
fuzz corpus, legal and corrupted layouts alike.

Validator kernels operate on :class:`repro.grid.table.WireTable` arrays
and return *clean verdicts*, not error messages: ``True`` means the
corresponding scalar check in :mod:`repro.grid.validate` provably
accepts; ``False`` means "suspicious" and the caller re-runs the scalar
check, which either raises its usual byte-identical :class:`LayoutError`
or (for the deliberately conservative wire-blind kernels ``bend_clean``
and ``via_clean``-free cases) accepts after all.  A kernel must never
return ``True`` when the scalar check would raise.

Cross-backend exactness notes:

* ``edge_sweep`` / ``via_clean`` / ``pins_clean`` are exact: their
  verdict matches the scalar check precisely.
* ``bend_clean`` is wire-blind: overlapping layer intervals claimed at
  one point by the *same* wire (legal) also report suspicion.
* ``node_sweep_clean`` assumes node squares are interior-disjoint per
  layer (the scalar node-overlap check runs first); under that
  assumption it is exact.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.accel._common import BASE_BITS, INF, bit_adjacency, edge_weights

__all__ = [
    "edge_sweep",
    "self_consistency_clean",
    "layer_budget_clean",
    "parity_clean",
    "bend_clean",
    "via_clean",
    "node_overlap_clean",
    "node_sweep_clean",
    "pins_clean",
    "wire_extents",
    "cut_profile",
    "cutwidth_dp",
    "classify_bucket",
]


# ---------------------------------------------------------------------------
# Validator kernels


def edge_sweep(table) -> tuple[int, bool]:
    """``(total_segments, clean)`` for the edge-disjointness rule.

    Exact: ``clean`` is ``False`` iff two spans on one (orientation,
    layer, grid line) properly overlap -- the scalar sweep's raise
    condition, same-wire overlaps included.
    """
    S = table.num_segments
    if S == 0:
        return 0, True
    x1, y1 = table.seg_x1, table.seg_y1
    x2, y2 = table.seg_x2, table.seg_y2
    lay = table.seg_layer
    lines: dict[tuple, list[tuple[int, int]]] = {}
    for i in range(S):
        if y1[i] == y2[i]:
            key = (1, lay[i], y1[i])
            span = (x1[i], x2[i])
        else:
            key = (0, lay[i], x1[i])
            span = (y1[i], y2[i])
        b = lines.get(key)
        if b is None:
            lines[key] = [span]
        else:
            b.append(span)
    for spans in lines.values():
        if len(spans) < 2:
            continue
        spans.sort()
        max_hi = spans[0][1]
        for lo, hi in spans[1:]:
            if lo < max_hi:
                return S, False
            if hi > max_hi:
                max_hi = hi
    return S, True


def self_consistency_clean(table) -> bool:
    """No consecutive same-layer, same-orientation segments (exact)."""
    starts = table.wire_seg_start
    y1, y2, lay = table.seg_y1, table.seg_y2, table.seg_layer
    for wi in range(table.num_wires):
        for i in range(starts[wi], starts[wi + 1] - 1):
            if lay[i] == lay[i + 1] and (
                (y1[i] == y2[i]) == (y1[i + 1] == y2[i + 1])
            ):
                return False
    return True


def layer_budget_clean(table, layers: int) -> bool:
    """Every segment layer and riser z-span inside ``1..layers`` (exact)."""
    if table.num_segments:
        lay = table.seg_layer
        if min(lay) < 1 or max(lay) > layers:
            return False
    zstarts = table.wire_zrun_start
    for wi in range(table.num_wires):
        if table.wire_is_riser[wi]:
            z = zstarts[wi]
            if table.zrun_lo[z] < 1 or table.zrun_hi[z] > layers:
                return False
    return True


def parity_clean(table) -> bool:
    """Scheme convention: horizontal odd layers, vertical even (exact)."""
    y1, y2, lay = table.seg_y1, table.seg_y2, table.seg_layer
    for i in range(table.num_segments):
        if (y1[i] == y2[i]) != (lay[i] % 2 == 1):
            return False
    return True


def bend_clean(table) -> bool:
    """No two bend/via layer intervals overlap at one planar point.

    Wire-blind (conservative): same-wire interval overlaps at a point
    -- which the scalar check permits -- also report suspicion.
    """
    occupied: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def claim(x, y, lo, hi) -> bool:
        lst = occupied.get((x, y))
        if lst is None:
            occupied[(x, y)] = [(lo, hi)]
            return True
        for plo, phi in lst:
            if lo <= phi and plo <= hi:
                return False
        lst.append((lo, hi))
        return True

    starts = table.wire_seg_start
    zstarts = table.wire_zrun_start
    x1, y1 = table.seg_x1, table.seg_y1
    x2, y2 = table.seg_x2, table.seg_y2
    lay, rev = table.seg_layer, table.seg_rev
    for wi in range(table.num_wires):
        if table.wire_is_riser[wi]:
            z = zstarts[wi]
            if not claim(
                table.zrun_x[z], table.zrun_y[z],
                table.zrun_lo[z], table.zrun_hi[z],
            ):
                return False
            continue
        for i in range(starts[wi], starts[wi + 1] - 1):
            # The junction is segment i's path end.
            if rev[i]:
                jx, jy = x1[i], y1[i]
            else:
                jx, jy = x2[i], y2[i]
            la, lb = lay[i], lay[i + 1]
            if la > lb:
                la, lb = lb, la
            if not claim(jx, jy, la, lb):
                return False
    return True


def via_clean(table) -> bool:
    """No segment pierces another wire's via interior (exact).

    Mirrors the scalar check wire-aware: a wire's own segments may
    cover its via interiors.
    """
    Z = table.num_zruns
    if Z == 0:
        return True
    zlo, zhi = table.zrun_lo, table.zrun_hi
    zstarts = table.wire_zrun_start

    runs: list[tuple[int, int, int, int, int]] = []
    interior: set[int] = set()
    wi = 0
    for z in range(Z):
        while zstarts[wi + 1] <= z:
            wi += 1
        if zhi[z] - zlo[z] >= 2:
            runs.append((wi, table.zrun_x[z], table.zrun_y[z], zlo[z], zhi[z]))
            interior.update(range(zlo[z] + 1, zhi[z]))
    if not runs:
        return True

    x1, y1 = table.seg_x1, table.seg_y1
    x2, y2 = table.seg_x2, table.seg_y2
    lay = table.seg_layer
    starts = table.wire_seg_start
    lines: dict[tuple, list[tuple[int, int, int]]] = {}
    swi = 0
    for i in range(table.num_segments):
        while starts[swi + 1] <= i:
            swi += 1
        if lay[i] not in interior:
            continue
        if y1[i] == y2[i]:
            key = (1, lay[i], y1[i])
            row = (x1[i], x2[i], swi)
        else:
            key = (0, lay[i], x1[i])
            row = (y1[i], y2[i], swi)
        b = lines.get(key)
        if b is None:
            lines[key] = [row]
        else:
            b.append(row)
    index: dict[tuple, tuple[list[int], list[int]]] = {}
    for key, spans in lines.items():
        spans.sort()
        prefix_max_hi: list[int] = []
        top = spans[0][1]
        for _, hi, _ in spans:
            if hi > top:
                top = hi
            prefix_max_hi.append(top)
        index[key] = ([lo for lo, _, _ in spans], prefix_max_hi)

    def covered(key, coord, self_wire) -> bool:
        spans = lines.get(key)
        if not spans:
            return False
        los, prefix_max_hi = index[key]
        i = bisect_right(los, coord) - 1
        while i >= 0 and prefix_max_hi[i] > coord:
            lo, hi, owner = spans[i]
            if lo < coord < hi and owner != self_wire:
                return True
            i -= 1
        return False

    for owner, x, y, lo, hi in runs:
        for layer in range(lo + 1, hi):
            if covered((1, layer, y), x, owner):
                return False
            if covered((0, layer, x), y, owner):
                return False
    return True


def _node_bands(table):
    """Per-layer y-bands of positive-area node rects.

    Returns ``{layer: [(y0, y1, xs0, xs1), ...]}`` where within one
    band (same y-extent) the rects are sorted by ``(x0, x1)``.
    """
    bands: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
    nx0, ny0 = table.node_x0, table.node_y0
    nx1, ny1 = table.node_x1, table.node_y1
    nlay = table.node_layer
    for r in range(len(nx0)):
        if nx1[r] > nx0[r] and ny1[r] > ny0[r]:
            key = (nlay[r], ny0[r], ny1[r])
            b = bands.get(key)
            if b is None:
                bands[key] = [(nx0[r], nx1[r])]
            else:
                b.append((nx0[r], nx1[r]))
    by_layer: dict[int, list[tuple[int, int, list[int], list[int]]]] = {}
    for (layer, y0, y1), rects in bands.items():
        rects.sort()
        by_layer.setdefault(layer, []).append(
            (y0, y1, [x0 for x0, _ in rects], [x1 for _, x1 in rects])
        )
    return by_layer


def node_overlap_clean(table) -> bool:
    """Positive-area node rects are interior-disjoint (banded accept).

    Within a band (same layer and y-extent) the x-sorted intervals
    decide exactly: interiors overlap iff some ``x0`` undercuts its
    predecessor's ``x1``.  Bands whose *y*-extents overlap on a shared
    layer are merely *suspicious* -- cross-band pairs are not compared,
    so the verdict stays conservative and the scalar sweep diagnoses.
    Zero-extent rects have no interior and are exempt throughout.
    """
    if len(table.node_x0) == 0:
        return True
    for bands in _node_bands(table).values():
        bands.sort(key=lambda b: (b[0], b[1]))
        max_y1 = None
        for y0, y1, xs0, xs1 in bands:
            if max_y1 is not None and y0 < max_y1:
                return False
            max_y1 = y1 if max_y1 is None else max(max_y1, y1)
            for j in range(1, len(xs0)):
                if xs0[j] < xs1[j - 1]:
                    return False
    return True


def node_sweep_clean(table) -> bool:
    """No segment crosses a node interior on the node's layer.

    Assumes node rects are interior-disjoint within each band (the
    scalar node-overlap check establishes this before the kernel runs);
    under that assumption a single ``bisect`` candidate per band
    decides, exactly as the numpy backend does.
    """
    if table.num_segments == 0 or len(table.node_x0) == 0:
        return True
    by_layer = _node_bands(table)
    if not by_layer:
        return True
    x1, y1 = table.seg_x1, table.seg_y1
    x2, y2 = table.seg_x2, table.seg_y2
    lay = table.seg_layer
    for i in range(table.num_segments):
        bands = by_layer.get(lay[i])
        if not bands:
            continue
        sx_lo, sx_hi = x1[i], x2[i]
        sy_lo, sy_hi = y1[i], y2[i]
        for y0, yb1, xs0, xs1 in bands:
            if sy_hi <= y0 or sy_lo >= yb1:
                continue
            j = bisect_right(xs0, sx_hi - 1) - 1
            if j >= 0 and xs1[j] > sx_lo:
                return False
    return True


def pins_clean(table, u_rows, v_rows) -> bool:
    """Wire endpoints on their nodes' perimeters, uniquely (exact).

    ``u_rows[i]`` / ``v_rows[i]`` are the placement-row indices of wire
    ``i``'s endpoint nodes (callers resolve labels; an unresolvable
    label means falling back to the scalar check instead).
    """
    W = table.num_wires
    if W == 0:
        return True
    sx, sy, ex, ey = table.wire_endpoints()
    nx0, ny0 = table.node_x0, table.node_y0
    nx1, ny1 = table.node_x1, table.node_y1

    def perim(px, py, r) -> bool:
        inside = nx0[r] <= px <= nx1[r] and ny0[r] <= py <= ny1[r]
        strict = nx0[r] < px < nx1[r] and ny0[r] < py < ny1[r]
        return inside and not strict

    owner: dict[tuple, int] = {}
    for wi in range(W):
        ur, vr = u_rows[wi], v_rows[wi]
        s = (sx[wi], sy[wi])
        e = (ex[wi], ey[wi])
        if perim(s[0], s[1], ur) and perim(e[0], e[1], vr):
            pairs = ((ur, s), (vr, e))
        elif perim(e[0], e[1], ur) and perim(s[0], s[1], vr):
            pairs = ((ur, e), (vr, s))
        else:
            return False
        for node_row, pt in pairs:
            key = (node_row, pt)
            prev = owner.get(key)
            if prev is not None and prev != wi:
                return False
            owner[key] = wi
    return True


def wire_extents(table):
    """Per-wire ``(ymin, ymax, lmin, lmax)`` lists for dirty tracking.

    Y extent over segment endpoints (a riser's planar point); layer
    extent over segment layers (a riser's z-span).  Via interiors lie
    between the adjacent segments' layers, so the segment layer range
    covers them.
    """
    W = table.num_wires
    ymin = [0] * W
    ymax = [0] * W
    lmin = [0] * W
    lmax = [0] * W
    starts = table.wire_seg_start
    zstarts = table.wire_zrun_start
    y1, y2, lay = table.seg_y1, table.seg_y2, table.seg_layer
    for wi in range(W):
        if table.wire_is_riser[wi]:
            z = zstarts[wi]
            ymin[wi] = ymax[wi] = int(table.zrun_y[z])
            lmin[wi] = int(table.zrun_lo[z])
            lmax[wi] = int(table.zrun_hi[z])
            continue
        a, b = starts[wi], starts[wi + 1]
        ymin[wi] = int(min(y1[i] for i in range(a, b)))
        ymax[wi] = int(max(y2[i] for i in range(a, b)))
        lmin[wi] = int(min(lay[i] for i in range(a, b)))
        lmax[wi] = int(max(lay[i] for i in range(a, b)))
    return ymin, ymax, lmin, lmax


# ---------------------------------------------------------------------------
# Cutwidth kernels


def cut_profile(n: int, pairs) -> int:
    """Max prefix-gap cut of an order: ``pairs`` are normalized
    ``(pu, pv)`` position pairs with ``pu < pv``; each contributes +1
    to every gap it spans (difference array + prefix sum)."""
    diff = [0] * (n + 1)
    for pu, pv in pairs:
        diff[pu] += 1
        diff[pv] -= 1
    best = 0
    running = 0
    for d in diff[:-1]:
        running += d
        if running > best:
            best = running
    return best


def _cut_table(network, n: int) -> list[int]:
    """``cut[S]`` (weighted edges between S and its complement) for all
    2^n subsets, by the lowest-set-bit recurrence::

        cut(S) = cut(S \\ v) + deg(v) - 2 * deg(v, S \\ v),  v = lowbit(S)
    """
    size = 1 << n
    cut = [0] * size
    weights = edge_weights(network)
    if all(wt == 1 for wt in weights.values()):
        # Simple graph: deg(v, prev) is a popcount of masked adjacency.
        adj = bit_adjacency(network)
        deg = [m.bit_count() for m in adj]
        for s in range(1, size):
            v = (s & -s).bit_length() - 1
            prev = s & (s - 1)
            cut[s] = cut[prev] + deg[v] - 2 * (adj[v] & prev).bit_count()
    else:
        wadj: list[dict[int, int]] = [dict() for _ in range(n)]
        for (iu, iv), wt in weights.items():
            wadj[iu][iv] = wt
            wadj[iv][iu] = wt
        for s in range(1, size):
            v = (s & -s).bit_length() - 1
            prev = s & (s - 1)
            delta = 0
            for w, wt in wadj[v].items():
                delta += -wt if (prev >> w) & 1 else wt
            cut[s] = cut[prev] + delta
    return cut


def _fill_block(
    dp: list[int], cut: list[int], base: int, k: int, carry: list[int]
) -> None:
    """Fill ``dp[base : base + 2^k]`` given the offset-bit carry.

    ``carry[r]`` is the min of ``dp`` over the states reached from
    ``base + r`` by removing one of the bits of ``base`` (the already
    recursed-past "offset" bits); removals of bits inside ``r`` are
    resolved here, high bit by elementwise min, low bits by the base
    scan.
    """
    while k > BASE_BITS:
        k -= 1
        half = 1 << k
        _fill_block(dp, cut, base, k, carry[:half])
        # States in the upper half may also drop the block's top bit,
        # landing on the just-filled lower half: fold it into the carry.
        carry = list(map(min, carry[half:], dp[base:base + half]))
        base += half
    for r in range(1 << k):
        s = base + r
        if not s:
            continue  # dp[0] = 0, set by the caller
        cs = cut[s]
        best = carry[r]
        if best > cs:
            t = r
            while t:
                b = t & -t
                t -= b
                cand = dp[s - b]
                if cand < best:
                    if cand <= cs:
                        best = cs
                        break
                    best = cand
        dp[s] = cs if best < cs else best


def cutwidth_dp(network, n: int) -> tuple[list[int], list[int]]:
    """The full ``(dp, cut)`` tables over all 2^n vertex subsets,
    by the lowest-set-bit carry recurrence (interpreted inner loop
    bounded by ``BASE_BITS`` candidates per state)."""
    size = 1 << n
    cut = _cut_table(network, n)
    dp = [0] * size
    _fill_block(dp, cut, 0, n, [INF] * size)
    dp[0] = 0
    return dp, cut


# ---------------------------------------------------------------------------
# Fast-engine kernel


def classify_bucket(movers_raw, hop, t_now, tail, nhops, route_start, flat, starts):
    """Classify one calendar-queue time bucket's movers.

    ``movers_raw`` comes sorted ascending.  Returns
    ``(n_done, top, done_lats, groups)``: the arrival count, the max
    arrival completion time, their latencies (mover order), and the
    non-arrived movers grouped by contended link as
    ``[(link_id, [mover, ...]), ...]`` in ascending link id with
    members in ascending message index -- exactly the order the fast
    engine's scalar arbitration consumes.
    """
    n_done = 0
    top = 0
    done_lats: list[int] = []
    move_links: list[tuple[int, int]] = []
    for i in movers_raw:
        hp = hop[i]
        if hp >= nhops[i]:
            done = t_now + (tail if nhops[i] > 0 else 0)
            if done > top:
                top = done
            done_lats.append(done - starts[i])
            n_done += 1
        else:
            move_links.append((flat[route_start[i] + hp], i))
    move_links.sort(key=lambda p: p[0])
    groups: list[tuple[int, list[int]]] = []
    for li, i in move_links:
        if groups and groups[-1][0] == li:
            groups[-1][1].append(i)
        else:
            groups.append((li, [i]))
    return n_done, top, done_lats, groups
