"""Product-network clusters (Section 3.2, ref. [4]).

A PN cluster replaces every node of a product network with a cluster.
:class:`PNCluster` is the generic construction: given a quotient
network, a per-supernode cluster factory and an attachment rule, it
produces the expanded network together with its canonical partition.
:class:`KAryNCubeCluster` is the paper's running example (k-ary n-cube
cluster-c with hypercube or complete-graph clusters).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.topology.base import Edge, Network, Node
from repro.topology.partition import Partition

__all__ = ["PNCluster", "KAryNCubeCluster"]


class PNCluster(Network):
    """Generic PN cluster.

    Parameters
    ----------
    quotient_network:
        The product network whose nodes become clusters.
    cluster_size:
        Number of nodes per cluster, ``c``.
    cluster_edges:
        Edges of one cluster, as pairs of ints in 0..c-1 (every cluster
        is a copy of the same graph, as in ref. [4]).
    attach:
        Rule assigning each quotient edge endpoint to a cluster-local
        node: ``attach(supernode, edge_index) -> local index``.  The
        default distributes a supernode's incident links round-robin
        over its cluster's nodes, which keeps per-node attachment
        counts minimal.
    """

    def __init__(
        self,
        quotient_network: Network,
        cluster_size: int,
        cluster_edges: Sequence[tuple[int, int]],
        attach: Callable[[Node, int], int] | None = None,
        *,
        name: str | None = None,
    ):
        if cluster_size < 1:
            raise ValueError("cluster_size >= 1")
        for a, b in cluster_edges:
            if not (0 <= a < cluster_size and 0 <= b < cluster_size):
                raise ValueError("cluster edge out of range")
        self.quotient_network = quotient_network
        self.cluster_size = cluster_size
        self.cluster_edges = list(cluster_edges)
        self._attach = attach
        self.name = name or f"PNC({quotient_network.name}, c={cluster_size})"

    def _build_nodes(self) -> Sequence[Node]:
        return [
            (q, j)
            for q in self.quotient_network.nodes
            for j in range(self.cluster_size)
        ]

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        for q in self.quotient_network.nodes:
            for a, b in self.cluster_edges:
                edges.append(((q, a), (q, b)))
        counters: dict[Node, int] = {}
        for u, v in self.quotient_network.edges:
            ju = self._attach_local(u, counters)
            jv = self._attach_local(v, counters)
            edges.append(((u, ju), (v, jv)))
        return edges

    def _attach_local(self, q: Node, counters: dict[Node, int]) -> int:
        idx = counters.get(q, 0)
        counters[q] = idx + 1
        if self._attach is not None:
            return self._attach(q, idx)
        return idx % self.cluster_size

    def cluster_partition(self) -> Partition:
        return Partition({n: n[0] for n in self.nodes}, name="pn-clusters")


class KAryNCubeCluster(PNCluster):
    """k-ary n-cube cluster-c (ref. [4], Section 3.2's example).

    ``cluster`` selects the intra-cluster topology: ``"hypercube"``
    (c must be a power of two) or ``"complete"`` -- the two cases whose
    area accounting Section 3.2 works out (negligible overhead while
    ``c = o(k^{n/2-1})`` resp. ``c = o(k^{n/4-1})``).
    """

    def __init__(self, k: int, n: int, c: int, cluster: str = "hypercube"):
        from repro.topology.kary import KAryNCube

        if cluster == "hypercube":
            if c < 2 or c & (c - 1):
                raise ValueError("hypercube cluster needs c a power of two")
            dim = c.bit_length() - 1
            cluster_edges = [
                (u, u ^ (1 << i))
                for u in range(c)
                for i in range(dim)
                if u < u ^ (1 << i)
            ]
        elif cluster == "complete":
            cluster_edges = [
                (i, j) for i in range(c) for j in range(i + 1, c)
            ]
        else:
            raise ValueError(f"unknown cluster kind {cluster!r}")
        super().__init__(
            KAryNCube(k, n),
            c,
            cluster_edges,
            name=f"{k}-ary {n}-cube cluster-{c} ({cluster})",
        )
        self.k, self.n, self.c = k, n, c
        self.cluster_kind = cluster
