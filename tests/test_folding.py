"""Folding and collinear-multilayer baselines (Section 2.2)."""

import pytest

from repro.core import (
    collinear_multilayer_metrics,
    fold_metrics,
    layout_collinear_network,
    layout_hypercube,
    measure,
)
from repro.topology import Hypercube


class TestFolding:
    def test_area_divides_by_half_layers(self):
        m = measure(layout_hypercube(6, layers=2))
        f = fold_metrics(m, 8)
        assert f.area == pytest.approx(m.area / 4)

    def test_volume_unchanged(self):
        m = measure(layout_hypercube(6, layers=2))
        for L in (4, 6, 8):
            f = fold_metrics(m, L)
            assert f.volume == pytest.approx(m.volume)

    def test_wire_unchanged(self):
        m = measure(layout_hypercube(6, layers=2))
        f = fold_metrics(m, 8)
        assert f.max_wire == m.max_wire

    def test_requires_thompson_input(self):
        m = measure(layout_hypercube(6, layers=4))
        with pytest.raises(ValueError, match="Thompson"):
            fold_metrics(m, 8)

    def test_odd_layers_floor(self):
        m = measure(layout_hypercube(6, layers=2))
        assert fold_metrics(m, 5).area == pytest.approx(m.area / 2)


class TestCollinearBaseline:
    def test_area_shrinks_at_most_half_layers(self):
        m = measure(layout_collinear_network(Hypercube(6)))
        c = collinear_multilayer_metrics(m, 8)
        assert c.area >= m.area / 4  # width never shrinks
        assert c.max_wire == m.max_wire

    def test_volume_never_improves(self):
        m = measure(layout_collinear_network(Hypercube(6)))
        for L in (4, 8):
            c = collinear_multilayer_metrics(m, L)
            assert c.volume >= m.volume * 0.99

    def test_requires_thompson_input(self):
        m = measure(layout_collinear_network(Hypercube(4), layers=4))
        with pytest.raises(ValueError):
            collinear_multilayer_metrics(m, 8)
