"""E9: end-to-end traffic performance on multilayer layouts.

Closing the paper's claim chain with a message-level simulation: the
same network, the same e-cube routes and the same traffic kernels run
faster on the L-layer layout because every link is a shorter wire.
The folding baseline, whose wires keep their 2-layer lengths, gains
nothing.

Two engine benches ride along:

* **E9d** -- the performance gate for :func:`repro.routing.
  simulate_fast`: >= 20x over the per-packet oracle on 10-cube uniform
  traffic at saturation, asserted byte-identical first.  The full gate
  simulates ~0.5M messages and costs minutes (almost all of it the
  oracle); ``REPRO_BENCH_FAST=1`` switches to a reduced load whose
  table is titled ``E9d-smoke`` so its (much smaller) ratio never
  collides with the committed full-gate baseline in ``bench-diff``.
* **E9e** -- one saturation-sweep knee per network family
  (hypercube / mesh / ring), located by :func:`repro.routing.
  knee_point`.
"""

import os
import time

from repro.core import layout_hypercube
from repro.core.folding import fold_layout
from repro.routing import (
    bit_complement,
    dimension_order_route,
    knee_point,
    layout_link_delays,
    random_permutation,
    saturation_sweep,
    simulate,
    simulate_fast,
    transpose,
    uniform,
)
from repro.topology import Hypercube, Mesh, Ring

DIM = 8

#: Reduced load for CI smoke runs (REPRO_BENCH_FAST=1).
FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))


def _route(net):
    return lambda s, d: dimension_order_route(net, s, d)


def test_traffic_kernels_vs_layers(benchmark, report):
    net = Hypercube(DIM)
    route = _route(net)
    kernels = {
        "bit-complement": bit_complement(net),
        "transpose": transpose(net),
        "random-perm": random_permutation(net),
    }
    base_lay = layout_hypercube(DIM, layers=2, node_side="min")
    rows = []
    base_results = {}
    for L in (2, 4, 8):
        lay = layout_hypercube(DIM, layers=L, node_side="min")
        for name, msgs in kernels.items():
            res = simulate(net, msgs, layout=lay, router=route)
            if L == 2:
                base_results[name] = res
            base = base_results[name]
            rows.append([
                name, L, res.makespan,
                f"{base.makespan / res.makespan:.2f}",
                f"{res.avg_latency:.0f}",
                f"{base.avg_latency / res.avg_latency:.2f}",
            ])
    report(
        f"E9a: {DIM}-cube traffic kernels across L "
        "(store-and-forward, layout-derived link delays)",
        ["kernel", "L", "makespan", "speedup", "avg latency", "speedup"],
        rows,
    )
    benchmark.pedantic(
        simulate, args=(net, kernels["random-perm"]),
        kwargs={"layout": base_lay, "router": route},
        rounds=1, iterations=1,
    )


def test_latency_vs_load_curve(report, benchmark):
    """E9c: the classic latency-vs-injection-rate curve, per layout.

    Shorter wires shift the whole curve down: at every load level the
    L=8 layout delivers lower average latency."""
    from repro.routing import rate_injection

    net = Hypercube(6)
    route = lambda s, d: dimension_order_route(net, s, d)  # noqa: E731
    lay2 = layout_hypercube(6, layers=2, node_side="min")
    lay8 = layout_hypercube(6, layers=8, node_side="min")
    rows = []
    for rate in (0.002, 0.01, 0.03):
        msgs = rate_injection(net, rate=rate, duration=300)
        r2 = simulate(net, msgs, layout=lay2, router=route)
        r8 = simulate(net, msgs, layout=lay8, router=route)
        assert r8.avg_latency < r2.avg_latency
        rows.append([
            rate, r2.messages, f"{r2.avg_latency:.0f}",
            f"{r8.avg_latency:.0f}",
            f"{r2.avg_latency / r8.avg_latency:.2f}",
        ])
    report(
        "E9c: 6-cube latency vs injection rate (uniform random traffic)",
        ["rate", "messages", "avg latency L=2", "avg latency L=8",
         "speedup"],
        rows,
    )
    benchmark(
        simulate, net, rate_injection(net, rate=0.01, duration=100),
        layout=lay2, router=route,
    )


def test_engine_vs_oracle_gate(report, benchmark):
    """E9d: the batched engine's >= 20x gate at saturation.

    10-cube, uniform traffic at rate 1.0 with 16-flit messages over
    the L=4 layout's link delays: the regime where the oracle's
    re-heapify of every waiter per release goes quadratic in queue
    depth while the engine stays linear in hops.  Parity is asserted
    field-for-field before any timing, so the speedup is measured
    between two provably identical simulations.
    """
    net = Hypercube(10)
    route = _route(net)
    link_delay = layout_link_delays(
        layout_hypercube(10, layers=4, node_side="min")
    )
    duration = 64 if FAST_MODE else 512
    msgs = uniform(net, rate=1.0, duration=duration, seed=0)
    kwargs = dict(
        router=route, link_delay=link_delay,
        message_length=16, max_cycles=10**9,
    )
    t0 = time.perf_counter()
    oracle = simulate(net, msgs, **kwargs)
    t_oracle = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = simulate_fast(net, msgs, **kwargs)
    t_fast = time.perf_counter() - t0
    assert fast == oracle, "engine diverged from the oracle at scale"
    ratio = t_oracle / t_fast
    title = (
        "E9d-smoke: engine vs oracle, reduced load (no gate)"
        if FAST_MODE
        else "E9d: batched engine vs per-packet oracle, 10-cube "
             "uniform at saturation (parity-checked)"
    )
    report(
        title,
        ["messages", "makespan", "oracle s", "engine s", "speedup"],
        [[
            len(msgs), oracle.makespan,
            f"{t_oracle:.2f}", f"{t_fast:.2f}", f"{ratio:.1f}x",
        ]],
    )
    if not FAST_MODE:
        assert ratio >= 20.0, (
            f"engine gate: {ratio:.1f}x < 20x over the oracle"
        )
    benchmark.pedantic(
        simulate_fast, args=(net, msgs), kwargs=kwargs,
        rounds=1, iterations=1,
    )


def test_saturation_knees_per_family(report, benchmark):
    """E9e: offered load vs latency, one knee per network family."""
    rates = [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0]
    duration = 24 if FAST_MODE else 48
    hnet = Hypercube(6)
    families = {
        "hypercube6": (hnet, dict(
            router=_route(hnet),
            link_delay=layout_link_delays(
                layout_hypercube(6, layers=4, node_side="min")
            ),
        )),
        "mesh4x4": (Mesh(4, 2), {}),
        "ring16": (Ring(16), {}),
    }
    curve_rows = []
    knee_rows = []
    for family, (net, kwargs) in families.items():
        rows = saturation_sweep(
            net, rates=rates, duration=duration, **kwargs
        )
        knee = knee_point(rows)
        assert knee is not None, f"{family}: no saturation knee in range"
        for r in rows:
            curve_rows.append([
                family, r["rate"], r["messages"],
                f"{r['avg_latency']:.1f}", r["p99"],
                f"{r['max_utilization']:.2f}",
            ])
        knee_rows.append([
            family, net.num_nodes, knee,
            f"{rows[0]['avg_latency']:.1f}",
        ])
    report(
        "E9e: saturation sweep (uniform traffic, fast engine)",
        ["family", "rate", "messages", "avg latency", "p99", "max util"],
        curve_rows,
    )
    report(
        "E9e-knee: saturation knee per family (latency > 2x zero-load)",
        ["family", "nodes", "knee rate", "zero-load latency"],
        knee_rows,
    )
    net = families["hypercube6"][0]
    benchmark(
        saturation_sweep, net, rates=rates, duration=duration,
        **families["hypercube6"][1],
    )


def test_folding_gains_nothing(report, benchmark):
    net = Hypercube(DIM)
    route = _route(net)
    msgs = bit_complement(net)
    base_lay = layout_hypercube(DIM, layers=2)
    base = simulate(net, msgs, layout=base_lay, router=route)
    rows = []
    for L in (4, 8):
        folded = fold_layout(base_lay, L)
        res = simulate(net, msgs, layout=folded, router=route)
        multi = simulate(
            net, msgs,
            layout=layout_hypercube(DIM, layers=L), router=route,
        )
        assert res.makespan == base.makespan  # folding: zero gain
        assert multi.makespan < base.makespan
        rows.append([
            L, base.makespan, res.makespan, multi.makespan,
            f"{base.makespan / multi.makespan:.2f}",
        ])
    report(
        "E9b: bit-complement makespan -- folded layout gains exactly "
        "nothing; the multilayer design wins",
        ["L", "L=2", "folded", "multilayer", "multilayer speedup"],
        rows,
    )
    benchmark(simulate, net, msgs, layout=base_lay, router=route)
