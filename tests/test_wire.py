"""Unit tests for wire path tracing, vias and bends."""

import pytest

from repro.grid.geometry import Segment
from repro.grid.wire import Wire, WirePathError


def L_wire(layer_h=1, layer_v=2):
    """A simple L: right 5 then down 3, with a via at the corner."""
    return Wire(
        "a",
        "b",
        [
            Segment.make(0, 0, 5, 0, layer_h),
            Segment.make(5, 0, 5, 3, layer_v),
        ],
    )


class TestTracing:
    def test_single_segment(self):
        w = Wire("a", "b", [Segment.make(0, 0, 4, 0, 1)])
        assert w.length == 4
        assert w.start.planar() == (0, 0)
        assert w.end.planar() == (4, 0)
        assert w.vias() == []
        assert w.bends() == []

    def test_l_wire(self):
        w = L_wire()
        assert w.length == 8
        assert w.start.planar() == (0, 0)
        assert w.end.planar() == (5, 3)
        assert w.vias() == [(5, 0)]
        assert w.bends() == [(5, 0)]

    def test_same_layer_bend_is_not_via(self):
        w = L_wire(layer_h=1, layer_v=1)
        assert w.vias() == []
        assert w.bends() == [(5, 0)]

    def test_reversed_segment_order_traces(self):
        # Segments are stored normalized; path may traverse in reverse.
        w = Wire(
            "a",
            "b",
            [
                Segment.make(5, 0, 0, 0, 1),  # normalized to (0,0)-(5,0)
                Segment.make(5, 3, 5, 0, 2),
            ],
        )
        assert w.start.planar() == (0, 0)
        assert w.end.planar() == (5, 3)

    def test_three_segments_u_shape(self):
        w = Wire(
            "a",
            "b",
            [
                Segment.make(0, 5, 0, 0, 2),
                Segment.make(0, 0, 7, 0, 1),
                Segment.make(7, 0, 7, 5, 2),
            ],
        )
        assert w.start.planar() == (0, 5)
        assert w.end.planar() == (7, 5)
        assert w.bends() == [(0, 0), (7, 0)]
        assert len(w.vias()) == 2

    def test_layers_used(self):
        assert L_wire().layers_used() == {1, 2}

    def test_disconnected_rejected(self):
        with pytest.raises(WirePathError):
            Wire(
                "a",
                "b",
                [
                    Segment.make(0, 0, 5, 0, 1),
                    Segment.make(6, 1, 6, 4, 2),
                ],
            )

    def test_empty_rejected(self):
        with pytest.raises(WirePathError):
            Wire("a", "b", [])

    def test_key_is_endpoint_sorted(self):
        w1 = Wire("a", "b", [Segment.make(0, 0, 1, 0, 1)])
        w2 = Wire("b", "a", [Segment.make(0, 0, 1, 0, 1)])
        assert w1.key() == w2.key()

    def test_key_distinguishes_parallel_edges(self):
        w1 = Wire("a", "b", [Segment.make(0, 0, 1, 0, 1)], edge_key=0)
        w2 = Wire("a", "b", [Segment.make(0, 1, 1, 1, 1)], edge_key=1)
        assert w1.key() != w2.key()

    def test_long_path_via_count(self):
        # Staircase: H V H V H -> 4 interior vertices, all layer changes.
        segs = [
            Segment.make(0, 0, 2, 0, 1),
            Segment.make(2, 0, 2, 2, 2),
            Segment.make(2, 2, 4, 2, 1),
            Segment.make(4, 2, 4, 4, 2),
            Segment.make(4, 4, 6, 4, 1),
        ]
        w = Wire("a", "b", segs)
        assert w.length == 10
        assert len(w.vias()) == 4
        assert w.bends() == [(2, 0), (2, 2), (4, 2), (4, 4)]
