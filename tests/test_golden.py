"""Golden-metrics regression: every family's layout is pinned exactly.

The engine is deterministic, so any diff in these numbers means the
geometry changed.  After an intentional change, regenerate with

    python tools/regen_golden.py

and review the diff like any other code change.
"""

import json
import pathlib

import pytest

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent / "golden_metrics.json"


def build_cases():
    import sys

    tools = pathlib.Path(__file__).resolve().parent.parent / "tools"
    sys.path.insert(0, str(tools))
    try:
        from regen_golden import build_cases as bc

        return bc()
    finally:
        sys.path.remove(str(tools))


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), "run tools/regen_golden.py first"
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def cases():
    return build_cases()


def test_no_missing_or_extra_cases(golden, cases):
    assert set(golden) == set(cases)


def test_all_metrics_match(golden, cases):
    from repro.core import measure

    mismatches = []
    for name, lay in sorted(cases.items()):
        m = measure(lay)
        got = {
            "area": m.area,
            "width": m.width,
            "height": m.height,
            "volume": m.volume,
            "max_wire": m.max_wire,
            "total_wire": m.total_wire,
            "wires": len(lay.wires),
            "vias": lay.via_count(),
        }
        if got != golden[name]:
            mismatches.append((name, golden[name], got))
    assert not mismatches, (
        "layout geometry changed; if intentional, regenerate the golden "
        f"file. First mismatches: {mismatches[:3]}"
    )
