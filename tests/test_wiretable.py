"""WireTable parity: the geometry kernel vs the object graph, exactly.

Every consumer rerouted onto :class:`~repro.grid.table.WireTable`
(metrics, delays, serialization, renderers) promises *byte-identical*
outputs.  This module checks that promise on the full topology zoo at
two layer budgets plus every network in the counterexample corpus, and
checks the numpy arrays against the pure-python fallback in-process
(``WireTable(lay, use_numpy=False)``), so it is meaningful both with
and without numpy installed -- CI runs it once in each mode.
"""

from pathlib import Path

import pytest

from repro.batch.spec import dispatch_scheme
from repro.check.shrink import iter_corpus
from repro.cli import _zoo_networks
from repro.grid.io import layout_to_json
from repro.grid.table import HAVE_NUMPY, WireTable
from repro.routing.paths import layout_link_delays
from repro.viz.ascii_art import ascii_grid_layout
from repro.viz.svg import svg_layer_stack, svg_layout

CORPUS_DIR = Path(__file__).parent / "corpus"

_LAYOUT_CACHE: dict = {}


def _corpus_networks() -> list:
    nets = []
    seen = set()
    for _path, case in iter_corpus(CORPUS_DIR):
        if case.network.name not in seen:
            seen.add(case.network.name)
            nets.append(case.network)
    return nets


def _cases() -> list:
    cases = []
    for net in _zoo_networks():
        for L in (2, 4):
            cases.append((f"zoo:{net.name}:L{L}", net, L))
    for net in _corpus_networks():
        cases.append((f"corpus:{net.name}:L2", net, 2))
    return cases


_CASES = _cases()


def _layout(case_id: str, net, layers: int):
    lay = _LAYOUT_CACHE.get(case_id)
    if lay is None:
        lay = dispatch_scheme(net, layers=layers, scheme="auto")
        _LAYOUT_CACHE[case_id] = lay
    return lay


def _install_table(lay, table) -> None:
    """Plant ``table`` as the layout's cached kernel (test-only)."""
    lay._table = table
    lay._table_stamp = (len(lay.placements), tuple(map(id, lay.wires)))


def _ceil_delay(length: int, alpha: float, base: float) -> int:
    return max(1, int(-(-(base + alpha * length) // 1)))


@pytest.mark.parametrize(
    "case_id,net,layers", _CASES, ids=[c[0] for c in _CASES]
)
def test_object_graph_parity(case_id, net, layers):
    """Table accessors == per-wire object walks, wire by wire."""
    lay = _layout(case_id, net, layers)
    table = lay.wire_table()
    wires = lay.wires
    assert table.num_wires == len(wires)

    assert table.wire_lengths() == [w.length for w in wires]
    assert table.via_count() == sum(len(w.z_occupancy()) for w in wires)
    expected_layers: set = set()
    for w in wires:
        expected_layers |= w.layers_used()
    assert table.layers_used() == expected_layers

    starts = table.wire_seg_start
    seg_rows = table.segment_rows()
    for wi, w in enumerate(wires):
        rows = seg_rows[int(starts[wi]):int(starts[wi + 1])]
        assert rows == [
            [s.x1, s.y1, s.x2, s.y2, s.layer] for s in w.segments
        ], f"segment rows differ on wire {wi} ({w.u}-{w.v})"
        assert table.wire_segment_rows(wi) == rows
        assert table.wire_vias(wi) == w.vias()
        assert table.wire_zruns(wi) == w.z_occupancy()

    for alpha, base in ((1.0, 1.0), (0.37, 2.5)):
        got = layout_link_delays(lay, alpha=alpha, base=base)
        want: dict = {}
        for w in wires:
            d = _ceil_delay(w.length, alpha, base)
            for key in ((w.u, w.v), (w.v, w.u)):
                if key not in want or d < want[key]:
                    want[key] = d
        assert got == want, f"link delays differ at alpha={alpha}"


@pytest.mark.parametrize(
    "case_id,net,layers", _CASES, ids=[c[0] for c in _CASES]
)
def test_numpy_vs_fallback_parity(case_id, net, layers):
    """Both backends produce identical values from identical layouts."""
    lay = _layout(case_id, net, layers)
    t_fb = WireTable(lay, use_numpy=False)
    t_nat = lay.wire_table()  # whatever backend the install selected

    assert t_fb.bounds() == t_nat.bounds()
    assert t_fb.wire_lengths() == t_nat.wire_lengths()
    assert t_fb.via_count() == t_nat.via_count()
    assert t_fb.layers_used() == t_nat.layers_used()
    assert t_fb.segment_rows() == t_nat.segment_rows()
    assert list(t_fb.wire_seg_start) == list(t_nat.wire_seg_start)
    assert t_fb.zrun_rows() == t_nat.zrun_rows()
    for alpha, base in ((1.0, 1.0), (0.37, 2.5)):
        assert t_fb.link_delay_values(alpha=alpha, base=base) == (
            t_nat.link_delay_values(alpha=alpha, base=base)
        )
    for wi in range(t_nat.num_wires):
        assert t_fb.wire_unit_edges(wi) == t_nat.wire_unit_edges(wi)
        assert t_fb.wire_cover_points(wi) == t_nat.wire_cover_points(wi)
        assert t_fb.wire_cover_point_rows(wi) == (
            t_nat.wire_cover_point_rows(wi)
        )


@pytest.mark.parametrize(
    "case_id,net,layers", _CASES, ids=[c[0] for c in _CASES]
)
def test_rendered_bytes_parity(case_id, net, layers):
    """JSON, SVGs and ASCII are byte-identical across backends."""
    lay = _layout(case_id, net, layers)
    native = (
        layout_to_json(lay),
        svg_layout(lay, legend=True),
        svg_layer_stack(lay),
        ascii_grid_layout(lay, max_width=10_000),
    )
    _install_table(lay, WireTable(lay, use_numpy=False))
    try:
        fallback = (
            layout_to_json(lay),
            svg_layout(lay, legend=True),
            svg_layer_stack(lay),
            ascii_grid_layout(lay, max_width=10_000),
        )
    finally:
        lay.invalidate_table()
    for name, a, b in zip(("json", "svg", "stack", "ascii"), native, fallback):
        assert a == b, f"{name} output differs between backends"


def test_table_cache_invalidation():
    """Appending or replacing a wire rebuilds the cached table."""
    from repro.topology import Ring

    lay = dispatch_scheme(Ring(6), layers=2, scheme="auto")
    t1 = lay.wire_table()
    assert lay.wire_table() is t1  # cached

    from repro.grid.wire import Wire

    w0 = lay.wires[0]
    lay.wires[0] = Wire(
        w0.u, w0.v, list(w0.segments), edge_key=w0.edge_key
    )
    t2 = lay.wire_table()
    assert t2 is not t1, "wire replacement must invalidate the table"

    lay.invalidate_table()
    assert lay.wire_table() is not t2


def test_table_cache_survives_id_reuse():
    """A replaced wire's recycled address must not serve a stale table.

    CPython frees the old ``Wire`` the moment the last reference
    drops and eagerly hands its address to the next allocation, so a
    stamp of stored ``id()`` ints can collide with a *different* wire
    at the same address and keep a stale cache (the fuzzer's
    dirty-region stage caught ``clone_layout`` serializing pre-edit
    geometry this way).  Assert the two mechanisms that close the
    hole: the stamp strong-references the stamped wires (their ids
    cannot be recycled while the cache lives), and the mutation API
    drops the cache without consulting the stamp at all.
    """
    from repro.grid.wire import Wire
    from repro.topology import Ring

    lay = dispatch_scheme(Ring(6), layers=2, scheme="auto")
    t1 = lay.wire_table()
    stamped = lay._table_stamp[1]
    assert len(stamped) == len(lay.wires)
    assert all(a is b for a, b in zip(stamped, lay.wires))

    w0 = lay.wires[0]
    lay.replace_wire(
        0, Wire(w0.u, w0.v, list(w0.segments), edge_key=w0.edge_key)
    )
    assert lay._table is None, "mutation API must drop the cache eagerly"
    t2 = lay.wire_table()
    assert t2 is not t1
    # The old stamp kept w0 alive until the rebuild; the new one holds
    # the replacement.
    assert lay._table_stamp[1][0] is lay.wires[0]


def test_fallback_env_flag():
    """REPRO_TABLE_FALLBACK=1 forces the pure-python backend."""
    import os
    import subprocess
    import sys

    env = dict(os.environ, REPRO_TABLE_FALLBACK="1")
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro.grid.table import HAVE_NUMPY; print(HAVE_NUMPY)"],
        env=env, capture_output=True, text=True, check=True,
    )
    assert out.stdout.strip() == "False"


def test_fallback_storage_is_compact():
    """nbytes() is meaningful in both backends (fallback uses
    array('q'), not python lists), and both report identical sizes for
    the core arrays."""
    from repro.topology import Hypercube

    lay = dispatch_scheme(Hypercube(4), layers=2, scheme="auto")
    t_fb = WireTable(lay, use_numpy=False)
    n_fb = t_fb.nbytes()
    assert n_fb > 0
    if HAVE_NUMPY:
        t_np = WireTable(lay, use_numpy=True)
        assert t_np.nbytes() == n_fb
