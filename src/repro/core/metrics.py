"""Measured layout metrics, including routing-path wire length.

Claim (4) of the paper's introduction concerns "the maximum total
length of wires along the routing path between any source-destination
pair": pick, for every node pair, the route minimizing total wire
length (over the layout's routed edges), and take the worst pair --
i.e. the weighted diameter of the network under wire-length edge
weights.  :func:`measure` computes it exactly via Dijkstra for small
networks and samples sources for large ones.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable

from repro import obs
from repro.grid.layout import GridLayout
from repro.topology.base import Network

__all__ = ["LayoutMetrics", "measure", "wire_length_weights", "weighted_diameter"]


@dataclass(frozen=True, slots=True)
class LayoutMetrics:
    """A complete metrics snapshot for one layout."""

    name: str
    num_nodes: int
    layers: int
    width: int
    height: int
    area: int
    volume: int
    max_wire: int
    total_wire: int
    path_wire: int | None = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "N": self.num_nodes,
            "L": self.layers,
            "width": self.width,
            "height": self.height,
            "area": self.area,
            "volume": self.volume,
            "max_wire": self.max_wire,
            "total_wire": self.total_wire,
            "path_wire": self.path_wire,
        }


def wire_length_weights(layout: GridLayout) -> dict[Hashable, list[tuple[Hashable, int]]]:
    """Adjacency with wire-length weights, from the routed layout.

    Parallel wires keep the shortest routed length per node pair.
    """
    adj: dict[Hashable, dict[Hashable, int]] = {}
    lengths = layout.wire_table().wire_lengths()
    for w, wlen in zip(layout.wires, lengths):
        best = adj.setdefault(w.u, {})
        if w.v not in best or wlen < best[w.v]:
            best[w.v] = wlen
        best2 = adj.setdefault(w.v, {})
        if w.u not in best2 or wlen < best2[w.u]:
            best2[w.u] = wlen
    return {u: list(nbrs.items()) for u, nbrs in adj.items()}


def _dijkstra_far(
    adj: dict, source: Hashable
) -> int:
    dist = {source: 0}
    heap = [(0, 0, source)]
    tiebreak = 0
    far = 0
    while heap:
        d, _, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        far = max(far, d)
        for v, wlen in adj.get(u, ()):  # pragma: no branch
            nd = d + wlen
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                tiebreak += 1
                heapq.heappush(heap, (nd, tiebreak, v))
    return far


def weighted_diameter(
    layout: GridLayout, *, max_sources: int | None = None
) -> int:
    """Max over source nodes of the farthest wire-length distance.

    With ``max_sources`` set, sources are subsampled deterministically
    (every ceil(N/max_sources)-th node), giving a lower bound that is
    exact for vertex-transitive networks (every family in the paper).
    """
    with obs.span("weighted_diameter") as sp:
        adj = wire_length_weights(layout)
        nodes = list(layout.placements)
        if max_sources is not None and len(nodes) > max_sources:
            step = -(-len(nodes) // max_sources)
            nodes = nodes[::step]
        best = 0
        for s in nodes:
            best = max(best, _dijkstra_far(adj, s))
        sp.add("sources", len(nodes))
    obs.count("measure.dijkstra_sources", len(nodes))
    return best


def measure(
    layout: GridLayout,
    network: Network | None = None,
    *,
    path_wire: bool = False,
    max_sources: int | None = 64,
) -> LayoutMetrics:
    """Collect measured metrics for ``layout``.

    ``path_wire=True`` additionally computes the weighted diameter
    (claim (4)); ``network`` is accepted for signature symmetry with
    prediction calls and future routing models but the weights come
    from the layout itself.
    """
    with obs.span(
        "measure",
        name=str(layout.meta.get("name", "layout")),
        path_wire=path_wire,
    ):
        bb = layout.bounding_box()
        pw = None
        if path_wire:
            pw = weighted_diameter(layout, max_sources=max_sources)
        max_wire = layout.max_wire_length()
        total_wire = layout.total_wire_length()
    obs.count("measure.layouts_measured")
    return LayoutMetrics(
        name=str(layout.meta.get("name", "layout")),
        num_nodes=len(layout.placements),
        layers=layout.layers,
        width=bb.w,
        height=bb.h,
        area=bb.w * bb.h,
        volume=layout.layers * bb.w * bb.h,
        max_wire=max_wire,
        total_wire=total_wire,
        path_wire=pw,
    )
