"""Product composition of collinear layouts."""

import pytest

from repro.collinear.engine import collinear_layout
from repro.collinear.formulas import kary_tracks, mixed_radix_ghc_tracks
from repro.collinear.product import product_collinear
from repro.collinear.recursions import complete_recursive, ring_recursive
from repro.topology import CompleteGraph, Hypercube, KAryNCube, Ring


def ring_layout(k):
    return ring_recursive(k)


def engine_layout(net):
    return collinear_layout(net.nodes, net.edges)


class TestComposition:
    def test_track_count_formula(self):
        a = ring_layout(3)
        b = ring_layout(3)
        prod = product_collinear(a, b)
        assert prod.num_tracks == 3 * 2 + 2  # |A| f_B + f_A = 8
        assert prod.num_nodes == 9

    def test_matches_kary_recursion(self):
        """ring x (k-ary n-cube) composition == the paper's f_k(n+1)."""
        inner = ring_layout(4)
        for _ in range(2):
            inner = product_collinear(ring_layout(4), inner)
        # Built 3 dimensions of a 4-ary cube.
        assert inner.num_tracks == kary_tracks(4, 3)

    def test_matches_ghc_recurrence(self):
        """K_r x K_r composition == the GHC recurrence value."""
        k3 = complete_recursive(3)
        prod = product_collinear(k3, k3)
        assert prod.num_tracks == mixed_radix_ghc_tracks((3, 3))

    def test_realizes_the_product_graph(self):
        a, b = ring_layout(3), ring_layout(4)
        prod = product_collinear(a, b)
        # Edge count: |A| |E_B| + |B| |E_A|.
        assert len(prod.edges) == 3 * 4 + 4 * 3
        prod.check()

    def test_engine_never_worse(self):
        """Left-edge over the composed order can only match or beat
        the composition."""
        a, b = ring_layout(4), ring_layout(4)
        prod = product_collinear(a, b)
        eng = collinear_layout(
            [v for v in prod.order],
            prod.edges,
            prod.order,
        )
        assert eng.num_tracks <= prod.num_tracks

    def test_composition_is_valid_assignment(self):
        # Complete graph as A (blocks), ring as B (copies).
        a = _tupled(complete_recursive(4))
        b = ring_layout(5)
        prod = product_collinear(a, b)
        prod.check()
        assert prod.num_tracks == 4 * 2 + a.num_tracks


def _tupled(lay):
    """Relabel int nodes as 1-tuples to avoid label collisions."""
    from repro.collinear.engine import CollinearLayout

    mapping = {v: (v,) for v in lay.order}
    return CollinearLayout(
        order=[mapping[v] for v in lay.order],
        edges=[(mapping[u], mapping[v]) for u, v in lay.edges],
        tracks=list(lay.tracks),
        num_tracks=lay.num_tracks,
    )
