"""Benchmark harness plumbing.

Each bench regenerates one paper artifact (table/figure/closed form)
and reports paper-vs-measured rows.  Reports go to three places:

* printed (visible with ``pytest -s``);
* appended to ``benchmarks/results/<bench>.txt`` so EXPERIMENTS.md can
  quote them verbatim;
* accumulated into ``benchmarks/results/<bench>.json`` -- the same
  tables as structured data -- and aggregated at session end into
  ``BENCH_summary.json`` at the repo root, the machine-diffable perf
  trajectory across PRs (environment stamp + per-bench wall times).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from repro import __version__
from repro.bench.harness import format_table, json_cell
from repro.bench.trajectory import git_sha

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SUMMARY_SCHEMA = "repro.bench-summary/v1"

# module name -> {"bench", "tables", "tests"}; filled as benches run,
# flushed to JSON at session end.
_SESSION: dict[str, dict] = {}


def _module_record(module: str) -> dict:
    rec = _SESSION.get(module)
    if rec is None:
        rec = _SESSION[module] = {"bench": module, "tables": [], "tests": []}
    return rec


def _environment() -> dict:
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


@pytest.fixture
def report(request):
    """report(title, headers, rows): print + persist a comparison table."""
    RESULTS.mkdir(exist_ok=True)
    module = request.node.module.__name__
    out_file = RESULTS / f"{module}.txt"
    rec = _module_record(module)

    def _report(title: str, headers, rows) -> None:
        text = f"\n== {title} ==\n{format_table(headers, rows)}\n"
        print(text)
        with out_file.open("a") as fh:
            fh.write(text)
        rec["tables"].append(
            {
                "test": request.node.name,
                "title": title,
                "headers": [str(h) for h in headers],
                "rows": [[json_cell(c) for c in row] for row in rows],
            }
        )

    return _report


@pytest.fixture(autouse=True)
def _bench_timer(request):
    """Record every bench test's wall time into the session summary."""
    rec = _module_record(request.node.module.__name__)
    t0 = time.perf_counter()
    yield
    rec["tests"].append(
        {
            "test": request.node.name,
            "seconds": round(time.perf_counter() - t0, 4),
        }
    )


def _flush_json_results() -> None:
    env = _environment()
    benches = []
    for module in sorted(_SESSION):
        rec = _SESSION[module]
        out = {
            "schema": "repro.bench-result/v1",
            "environment": env,
            **rec,
        }
        path = RESULTS / f"{module}.json"
        with path.open("w") as fh:
            json.dump(out, fh, indent=2, sort_keys=True)
            fh.write("\n")
        benches.append(
            {
                "bench": module,
                "tests": len(rec["tests"]),
                "tables": len(rec["tables"]),
                "seconds": round(sum(t["seconds"] for t in rec["tests"]), 4),
                "titles": [t["title"] for t in rec["tables"]],
                "results_file": str(path.relative_to(REPO_ROOT)),
            }
        )
    if not benches:
        return
    summary = {
        "schema": SUMMARY_SCHEMA,
        "environment": env,
        "total_seconds": round(sum(b["seconds"] for b in benches), 4),
        "benches": benches,
    }
    with (REPO_ROOT / "BENCH_summary.json").open("w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _append_trajectory(summary)


def _append_trajectory(summary: dict) -> None:
    """Append this session to the perf-regression trajectory.

    Partial runs (``pytest benchmarks/bench_kary.py``) would register
    as "every other bench vanished" in a diff, so only sessions that
    ran the performance gates contribute a record.  Disable entirely
    with ``REPRO_NO_TRAJECTORY=1`` (CI's throwaway runs do).
    """
    if os.environ.get("REPRO_NO_TRAJECTORY"):
        return
    from repro.bench.trajectory import (
        GATE_BENCHES,
        append_record,
        trajectory_record,
    )

    if any(name not in _SESSION for name in GATE_BENCHES):
        return

    record = trajectory_record(
        summary,
        {m: rec for m, rec in _SESSION.items()},
        sha=git_sha(REPO_ROOT),
    )
    append_record(REPO_ROOT / "benchmarks" / "trajectory.jsonl", record)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results():
    """Start each bench session clean; flush JSON results at the end."""
    if RESULTS.exists():
        for f in list(RESULTS.glob("*.txt")) + list(RESULTS.glob("*.json")):
            f.unlink()
    yield
    _flush_json_results()
