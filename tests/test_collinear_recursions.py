"""The paper's explicit constructions vs. formulas vs. the engine.

These are the exact-count results of Sections 3.1, 4.1, 5.1: the
recursion must hit the closed form *exactly*, and the generic engine
under the corresponding node order must certify the same count via its
max-cut bound.
"""

import pytest

from repro.collinear.engine import collinear_layout
from repro.collinear.formulas import (
    complete_graph_tracks,
    ghc_tracks,
    hypercube_tracks,
    kary_tracks,
    mixed_radix_ghc_tracks,
)
from repro.collinear.orders import binary_order, mixed_radix_order
from repro.collinear.recursions import (
    complete_recursive,
    ghc_construction_order,
    ghc_recursive,
    hypercube_recursive,
    kary_recursive,
    ring_recursive,
)
from repro.topology import GeneralizedHypercube, Hypercube, KAryNCube


class TestRing:
    def test_two_tracks(self):
        for k in (3, 5, 9):
            lay = ring_recursive(k)
            assert lay.num_tracks == 2
            lay.check()

    def test_edges_form_ring(self):
        lay = ring_recursive(5)
        assert len(lay.edges) == 5
        assert ((0,), (4,)) in lay.edges

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            ring_recursive(2)


class TestKAry:
    @pytest.mark.parametrize("k,n", [(3, 1), (3, 2), (3, 3), (4, 2), (5, 2), (4, 3)])
    def test_matches_formula_exactly(self, k, n):
        lay = kary_recursive(k, n)
        assert lay.num_tracks == kary_tracks(k, n)
        lay.check()

    @pytest.mark.parametrize("k,n", [(3, 2), (4, 2), (3, 3), (5, 2)])
    def test_engine_lex_order_matches(self, k, n):
        net = KAryNCube(k, n)
        lay = collinear_layout(net.nodes, net.edges, mixed_radix_order([k] * n))
        assert lay.num_tracks == kary_tracks(k, n)

    def test_figure2_is_eight_tracks(self):
        assert kary_recursive(3, 2).num_tracks == 8

    def test_edges_match_topology(self):
        lay = kary_recursive(3, 2)
        net = KAryNCube(3, 2)
        norm = lambda e: tuple(sorted(e))  # noqa: E731
        assert sorted(map(norm, lay.edges)) == sorted(map(norm, net.edges))

    def test_recursion_node_count(self):
        assert kary_recursive(4, 3).num_nodes == 64


class TestComplete:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9, 12, 15])
    def test_matches_formula(self, n):
        lay = complete_recursive(n)
        assert lay.num_tracks == complete_graph_tracks(n)
        assert lay.is_optimal()

    def test_figure3_is_twenty_tracks(self):
        assert complete_recursive(9).num_tracks == 20

    def test_any_order_is_equally_good(self):
        """K_N is order-invariant: the middle cut is always |N^2/4|."""
        n = 7
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for order in ([0, 2, 4, 6, 1, 3, 5], [6, 5, 4, 3, 2, 1, 0]):
            lay = collinear_layout(range(n), edges, order)
            assert lay.num_tracks == complete_graph_tracks(n)


class TestGHC:
    @pytest.mark.parametrize(
        "radices",
        [(3,), (4,), (3, 3), (4, 4), (3, 4), (4, 2), (2, 4), (3, 3, 3), (5, 3)],
    )
    def test_matches_recurrence_exactly(self, radices):
        lay = ghc_recursive(radices)
        assert lay.num_tracks == mixed_radix_ghc_tracks(radices)
        lay.check()

    @pytest.mark.parametrize("r,n", [(3, 2), (4, 2), (3, 3), (5, 2)])
    def test_uniform_closed_form(self, r, n):
        assert mixed_radix_ghc_tracks((r,) * n) == ghc_tracks(r, n)
        lay = ghc_recursive((r,) * n)
        assert lay.num_tracks == ghc_tracks(r, n)

    def test_engine_never_worse_than_recursion(self):
        """Left-edge over the construction order can only match or beat
        the paper's recurrence (it beats it by 1 on mixed radices)."""
        for radices in [(3, 4), (4, 3), (3, 3), (2, 4, 3)]:
            net = GeneralizedHypercube(radices)
            order = ghc_construction_order(radices)
            lay = collinear_layout(net.nodes, net.edges, order)
            assert lay.num_tracks <= mixed_radix_ghc_tracks(radices)

    def test_uniform_engine_at_most_formula(self):
        """For radix 3 the engine meets the recurrence exactly; for
        radix >= 4 left-edge packing genuinely beats the paper's
        stacked-K_r construction (e.g. 18 < 20 tracks for GHC(4,4)) --
        consistent with the layouts being optimal within 1 + o(1), not
        exactly optimal.  Recorded in EXPERIMENTS.md."""
        for r, n, exact in [(3, 2, True), (3, 3, True), (4, 2, False)]:
            net = GeneralizedHypercube((r,) * n)
            order = ghc_construction_order((r,) * n)
            lay = collinear_layout(net.nodes, net.edges, order)
            if exact:
                assert lay.num_tracks == ghc_tracks(r, n)
            else:
                assert lay.num_tracks < ghc_tracks(r, n)

    def test_edges_match_topology(self):
        lay = ghc_recursive((3, 4))
        net = GeneralizedHypercube((3, 4))
        norm = lambda e: tuple(sorted(e))  # noqa: E731
        assert sorted(map(norm, lay.edges)) == sorted(map(norm, net.edges))

    def test_radix2_is_hypercube_count(self):
        # All-radix-2 GHC recurrence: f = (N-1)*1/(2-1) = N-1 tracks,
        # worse than the dedicated |2N/3| hypercube layout -- the reason
        # Section 5.1 exists.
        assert ghc_tracks(2, 4) == 15
        assert hypercube_tracks(4) == 10


class TestHypercube:
    @pytest.mark.parametrize("dim", [2, 4, 6, 8])
    def test_even_recursion_matches_formula(self, dim):
        lay = hypercube_recursive(dim)
        assert lay.num_tracks == hypercube_tracks(dim)
        lay.check()

    @pytest.mark.parametrize("dim", list(range(1, 11)))
    def test_binary_order_engine_matches_formula(self, dim):
        net = Hypercube(dim)
        lay = collinear_layout(net.nodes, net.edges, binary_order(dim))
        assert lay.num_tracks == hypercube_tracks(dim)
        assert lay.is_optimal()

    def test_figure4_is_ten_tracks(self):
        assert hypercube_recursive(4).num_tracks == 10

    def test_odd_dim_rejected_by_recursion(self):
        with pytest.raises(ValueError):
            hypercube_recursive(3)

    def test_edges_match_topology(self):
        lay = hypercube_recursive(4)
        net = Hypercube(4)
        norm = lambda e: tuple(sorted(e))  # noqa: E731
        assert sorted(map(norm, lay.edges)) == sorted(map(norm, net.edges))

    def test_recursion_is_optimal_certificate(self):
        lay = hypercube_recursive(6)
        assert lay.max_cut() == lay.num_tracks


class TestFormulaEdgeCases:
    def test_kary_guards(self):
        with pytest.raises(ValueError):
            kary_tracks(1, 2)
        with pytest.raises(ValueError):
            kary_tracks(3, 0)

    def test_complete_guards(self):
        with pytest.raises(ValueError):
            complete_graph_tracks(0)
        assert complete_graph_tracks(1) == 0
        assert complete_graph_tracks(2) == 1

    def test_ghc_guards(self):
        with pytest.raises(ValueError):
            ghc_tracks(1, 2)
        with pytest.raises(ValueError):
            mixed_radix_ghc_tracks(())
        with pytest.raises(ValueError):
            mixed_radix_ghc_tracks((3, 1))

    def test_hypercube_guards(self):
        with pytest.raises(ValueError):
            hypercube_tracks(0)
        assert hypercube_tracks(1) == 1
        assert hypercube_tracks(2) == 2
