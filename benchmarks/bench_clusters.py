"""E3.2: Section 3.2 -- PN clusters / k-ary n-cube cluster-c.

Regenerates the claim that replacing each k-ary n-cube node with a
c-node cluster leaves the area within (1 + o(1)) of the plain torus as
long as c is small relative to k^(n/2 - 1): the quotient channels are
unchanged; only the cell pitch grows with the blocks.
"""

from repro.core import layout_kary, measure
from repro.core.schemes import layout_kary_cluster
from repro.topology import KAryNCubeCluster


def test_cluster_overhead_sweep(benchmark, report):
    rows = []
    k, n = 6, 2
    plain = measure(layout_kary(k, n))
    for c in (2, 4, 8):
        m = measure(layout_kary_cluster(k, n, c))
        net = KAryNCubeCluster(k, n, c)
        rows.append([
            c, net.num_nodes, plain.area, m.area,
            f"{m.area / plain.area:.2f}",
        ])
    report(
        "E3.2a: k-ary n-cube cluster-c area vs the plain torus "
        f"(k={k}, n={n}; overhead is the block pitch, channels unchanged)",
        ["c", "N", "torus area", "cluster-c area", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_kary_cluster, args=(6, 2, 4), rounds=1, iterations=1
    )


def test_channel_structure_preserved(report, benchmark):
    rows = []
    for k in (4, 6, 8):
        plain = layout_kary(k, 2)
        clustered = layout_kary_cluster(k, 2, 2)
        for p, c in zip(plain.meta["row_tracks"], clustered.meta["row_tracks"]):
            assert p <= c <= p + 1
        rows.append([
            k,
            sum(plain.meta["row_tracks"]),
            sum(clustered.meta["row_tracks"]),
        ])
    report(
        "E3.2b: total row tracks, torus vs cluster-c (within +1/channel)",
        ["k", "torus tracks", "cluster tracks"],
        rows,
    )
    benchmark(layout_kary_cluster, 4, 2, 2)


def test_relative_overhead_shrinks_with_k(report, benchmark):
    """Section 3.2 requires c = o(k^{n/2-1}), so the (1 + o(1)) regime
    needs n >= 3 (for n = 2 a fixed c never satisfies it).  With n = 4
    and c = 2 fixed, the cluster blocks stay O(1) while the channels
    grow with k: the area ratio falls toward 1.  Node sides are held
    equal so the comparison isolates the clustering overhead."""
    side = 6
    ratios = []
    rows = []
    for k in (3, 4, 6):
        plain = measure(layout_kary(k, 4, node_side=side))
        clustered = measure(layout_kary_cluster(k, 4, 2, node_side=side))
        ratios.append(clustered.area / plain.area)
        rows.append([k, plain.area, clustered.area, f"{ratios[-1]:.2f}"])
    assert ratios == sorted(ratios, reverse=True)
    report(
        "E3.2c: cluster-2 overhead ratio falls as k grows "
        "(n=4, equal node sides; 1 + o(1) per Section 3.2)",
        ["k", "torus area", "cluster area", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_kary_cluster, args=(4, 4, 2), rounds=1, iterations=1
    )
