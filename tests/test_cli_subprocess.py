"""End-to-end CLI tests through a real subprocess.

The in-process CLI tests (test_io.TestCli) exercise command logic;
these run ``python -m repro ...`` the way a user does, checking exit
codes, stdout stability and the machine-readable run reports.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.report import validate_report

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_cli(*args, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=timeout,
    )


class TestExitCodes:
    def test_layout_ok(self):
        p = run_cli("layout", "hypercube:3", "--validate")
        assert p.returncode == 0, p.stderr
        assert "validation: OK" in p.stdout

    def test_unknown_family_fails(self):
        p = run_cli("layout", "nonsense:3")
        assert p.returncode != 0
        assert "unknown network family" in p.stderr

    def test_missing_command_fails(self):
        p = run_cli()
        assert p.returncode != 0

    def test_predict_ok(self):
        p = run_cli("predict", "hypercube:6", "--layers", "4")
        assert p.returncode == 0, p.stderr
        assert "paper leading terms" in p.stdout


class TestStdoutStability:
    def test_layout_output_is_deterministic(self):
        a = run_cli("layout", "kary:3,2", "--layers", "4")
        b = run_cli("layout", "kary:3,2", "--layers", "4")
        assert a.returncode == b.returncode == 0
        assert a.stdout == b.stdout

    def test_fuzz_output_is_deterministic(self):
        a = run_cli("fuzz", "--budget", "12", "--seed", "5")
        b = run_cli("fuzz", "--budget", "12", "--seed", "5")
        assert a.returncode == b.returncode == 0
        # The elapsed column varies; compare everything else.
        stable_a = [l for l in a.stdout.splitlines() if "elapsed" not in l]
        stable_b = [l for l in b.stdout.splitlines() if "elapsed" not in l]
        assert stable_a[0] == stable_b[0]
        assert stable_a[-1] == stable_b[-1] == (
            "fuzz: OK (no invariant violations)"
        )


class TestFuzzCommand:
    def test_clean_run_exits_zero(self):
        p = run_cli("fuzz", "--budget", "9", "--seed", "2")
        assert p.returncode == 0, p.stderr
        assert "cases" in p.stdout
        assert "fuzz: OK" in p.stdout

    def test_stage_and_kind_filters(self):
        p = run_cli(
            "fuzz", "--budget", "6", "--seed", "0",
            "--stages", "collinear", "cutwidth", "--kinds", "random",
        )
        assert p.returncode == 0, p.stderr
        assert "agreement" not in p.stdout

    def test_bad_stage_rejected(self):
        p = run_cli("fuzz", "--budget", "1", "--stages", "bogus")
        assert p.returncode != 0

    def test_report_is_valid(self, tmp_path):
        report = tmp_path / "fuzz.json"
        p = run_cli(
            "fuzz", "--budget", "9", "--seed", "1",
            "--report", str(report),
        )
        assert p.returncode == 0, p.stderr
        doc = json.loads(report.read_text())
        validate_report(doc)
        assert doc["name"] == "fuzz"
        assert doc["spec"]["budget"] == 9
        assert doc["spec"]["seed"] == 1
        counters = doc["metrics"]["counters"]
        assert counters["fuzz.cases_run"] == 9
        assert counters["fuzz.stage.collinear"] == 9

    def test_trace_prints_span_tree(self):
        p = run_cli("fuzz", "--budget", "3", "--seed", "0", "--trace")
        assert p.returncode == 0, p.stderr
        assert "== span tree ==" in p.stdout
        assert "fuzz.case" in p.stdout


class TestProfileFlag:
    def test_profile_dumps_pstats(self, tmp_path):
        import pstats

        prof = tmp_path / "run.prof"
        p = run_cli("layout", "hypercube:3", "--profile", str(prof))
        assert p.returncode == 0, p.stderr
        assert f"profile written to {prof}" in p.stdout
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0

    def test_profile_excluded_from_report_spec(self, tmp_path):
        prof = tmp_path / "run.prof"
        report = tmp_path / "run.json"
        p = run_cli(
            "layout", "hypercube:3",
            "--profile", str(prof), "--report", str(report),
        )
        assert p.returncode == 0, p.stderr
        doc = json.loads(report.read_text())
        validate_report(doc)
        assert "profile" not in doc["spec"]


class TestStatsMem:
    def test_mem_table_covers_the_zoo(self):
        p = run_cli("stats", "--mem", "--layers", "2")
        assert p.returncode == 0, p.stderr
        assert "layout representation memory" in p.stdout
        assert "TOTAL" in p.stdout
        assert "5-cube" in p.stdout
        # Every per-network reduction ratio holds the table's promise.
        ratios = [
            float(line.rsplit(None, 1)[-1][:-1])
            for line in p.stdout.splitlines()
            if line.endswith("x")
        ]
        assert ratios and all(r >= 1.0 for r in ratios)


class TestTraceOut:
    """--trace-out must emit loadable Chrome trace-event JSON."""

    @staticmethod
    def _check_chrome_schema(doc):
        from repro.obs.export import validate_chrome_trace

        validate_chrome_trace(doc)
        events = doc["traceEvents"]
        assert events, "empty trace"
        completes = [e for e in events if e["ph"] == "X"]
        assert completes, "no span events"
        for ev in completes:
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
        return completes

    def test_sweep_trace_out(self, tmp_path):
        trace = tmp_path / "sweep-trace.json"
        p = run_cli(
            "sweep", "--networks", "ring:8", "hypercube:3", "star:3",
            "complete:5", "--layers", "2", "--workers", "2",
            "--trace-out", str(trace),
        )
        assert p.returncode == 0, p.stderr
        assert f"chrome trace written to {trace}" in p.stdout
        completes = self._check_chrome_schema(
            json.loads(trace.read_text())
        )
        # One process row per worker, plus the orchestrating process.
        pids = {e["pid"] for e in completes}
        assert pids == {0, 1, 2}
        names = {e["name"] for e in completes}
        assert {"sweep.run", "sweep.worker", "sweep.job",
                "build"} <= names

    def test_fuzz_trace_out(self, tmp_path):
        trace = tmp_path / "fuzz-trace.json"
        p = run_cli(
            "fuzz", "--budget", "4", "--seed", "0",
            "--trace-out", str(trace),
        )
        assert p.returncode == 0, p.stderr
        completes = self._check_chrome_schema(
            json.loads(trace.read_text())
        )
        names = {e["name"] for e in completes}
        assert {"fuzz.run", "fuzz.case"} <= names

    def test_events_out_jsonl(self, tmp_path):
        events = tmp_path / "events.jsonl"
        p = run_cli(
            "sweep", "--networks", "ring:8", "--layers", "2",
            "--events-out", str(events),
        )
        assert p.returncode == 0, p.stderr
        lines = [
            json.loads(line)
            for line in events.read_text().splitlines()
        ]
        assert lines[0]["type"] == "header"
        types = {line["type"] for line in lines}
        assert {"span", "counter"} <= types


class TestReportsAcrossCommands:
    @pytest.mark.parametrize(
        "args",
        [
            ("layout", "hypercube:3"),
            ("zoo", "--layers", "4"),
            ("predict", "kary:4,2"),
        ],
        ids=["layout", "zoo", "predict"],
    )
    def test_report_validates(self, tmp_path, args):
        report = tmp_path / "run.json"
        p = run_cli(*args, "--report", str(report))
        assert p.returncode == 0, p.stderr
        doc = json.loads(report.read_text())
        validate_report(doc)
        assert doc["name"] == args[0]


class TestSaturationDegenerate:
    def test_single_rate_sweep_exits_zero_with_message(self):
        """`--saturation` with one rate cannot bracket a knee: the CLI
        must say so and report knee=none instead of tracebacking."""
        p = run_cli(
            "simulate", "ring:6", "--saturation", "0.2",
            "--duration", "8",
        )
        assert p.returncode == 0, p.stderr
        assert "knee detection needs >= 2 rates" in p.stdout
        assert "knee at none in range" in p.stdout
        assert "Traceback" not in p.stderr

    def test_two_rates_no_message(self):
        p = run_cli(
            "simulate", "ring:6", "--saturation", "0.05", "0.2",
            "--duration", "8",
        )
        assert p.returncode == 0, p.stderr
        assert "knee detection needs" not in p.stdout


class TestServeLoadgenCli:
    """The daemon + load generator as real processes, like CI runs them."""

    def test_serve_then_loadgen_reports_percentiles(self, tmp_path):
        import time

        ready = tmp_path / "ready.json"
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--ready-file", str(ready),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.time() + 30
            while not ready.exists() and time.time() < deadline:
                assert server.poll() is None, server.stderr.read()
                time.sleep(0.1)
            port = json.loads(ready.read_text())["port"]
            p = run_cli(
                "loadgen", "--port", str(port), "-n", "20", "-c", "2",
                "--networks", "ring:6", "hypercube:3",
                "--json", str(report_path),
                "--save-trace", str(trace_path),
            )
            assert p.returncode == 0, p.stderr
            report = json.loads(report_path.read_text())
            assert report["ok"] == 20 and report["five_xx"] == 0
            lat = report["latency_ms"]
            assert lat["p50"] is not None
            assert lat["p50"] <= lat["p90"] <= lat["p99"]
            # Replay of the saved trace is all warm now.
            p = run_cli(
                "loadgen", "--port", str(port),
                "--trace-file", str(trace_path),
            )
            assert p.returncode == 0, p.stderr
            assert "20/20 ok" in p.stdout
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=10)
