"""Trace exporters: Chrome trace-event JSON and structured JSONL.

Two machine-readable views of one observed run, both fed from the
in-process span collector and metrics registry:

* :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event format (the ``{"traceEvents": [...]}`` JSON object
  understood by ``ui.perfetto.dev`` and ``about:tracing``).  Every
  span becomes a complete event (``ph: "X"``) with microsecond
  timestamps normalized to the earliest span; spans re-rooted from
  sweep/fuzz workers (attrs carry ``worker_id``) get their own
  process row, so a 4-worker sweep renders as four parallel tracks
  under the parent's.  Counters and histogram summaries become
  counter tracks (``ph: "C"``).

* :func:`jsonl_events` / :func:`write_jsonl` -- a line-delimited
  event log (one JSON object per line: spans flattened with
  ``depth``/``pid``, then metric samples) built for ``grep``/``jq``
  pipelines rather than a viewer.

* :func:`prometheus_text` / :func:`write_prometheus` -- the metrics
  registry in Prometheus text exposition format (counters as
  ``<name>_total``, histograms with *cumulative* ``_bucket{le=...}``
  series plus ``_sum``/``_count``).  Unlike the other exporters this
  one is refreshed **live**: the sweep watchdog rewrites the file
  (atomically, so scrapers never see a torn body) on every poll when
  ``--metrics-out`` is given.

The trace exporters are pure functions of the collected data -- they
never toggle collection -- and are wired into every CLI subcommand via
``--trace-out`` / ``--events-out`` and into
:class:`repro.batch.runner.SweepRunner`.
"""

from __future__ import annotations

import json
import os
import re

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "JSONL_SCHEMA",
    "chrome_trace",
    "jsonl_events",
    "prometheus_info",
    "prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]

CHROME_TRACE_SCHEMA = "repro.chrome-trace/v1"
JSONL_SCHEMA = "repro.events-jsonl/v1"

MAIN_PID = 0


def _forest_t0(roots) -> float:
    """Earliest span start in the forest (the trace's time origin)."""
    t0 = None
    stack = list(roots)
    while stack:
        rec = stack.pop()
        if rec.start and (t0 is None or rec.start < t0):
            t0 = rec.start
        stack.extend(rec.children)
    return t0 or 0.0


def _span_pid(rec, inherited: int) -> int:
    wid = rec.attrs.get("worker_id")
    if isinstance(wid, int):
        return wid + 1
    return inherited


def _args(rec) -> dict:
    out = {str(k): v for k, v in rec.attrs.items()}
    for k, v in rec.counts.items():
        out[f"count.{k}"] = v
    return out


def chrome_trace(
    roots: list | None = None, snapshot: dict | None = None
) -> dict:
    """Render the span forest + metrics as a Chrome trace document.

    ``roots`` defaults to the live collector's forest and ``snapshot``
    to the live registry's.  Timestamps (``ts``) are microseconds from
    the earliest span start; worker subtrees (spans whose attrs carry
    an integer ``worker_id``) are lifted onto their own process row
    ``pid = worker_id + 1``, with ``pid = 0`` the orchestrating
    process.  Returns the JSON-ready document.
    """
    if roots is None:
        roots = _trace.trace_roots()
    if snapshot is None:
        snapshot = _metrics.registry().snapshot()
    t0 = _forest_t0(roots)
    events: list[dict] = []
    pids: dict[int, str] = {}
    t_end = 0.0

    def visit(rec, pid: int, tid: int) -> None:
        nonlocal t_end
        pid = _span_pid(rec, pid)
        pids.setdefault(
            pid,
            "main" if pid == MAIN_PID else f"worker {pid - 1}",
        )
        ts = (rec.start - t0) * 1e6 if rec.start else 0.0
        dur = rec.duration * 1e6
        t_end = max(t_end, ts + dur)
        events.append({
            "name": rec.name,
            "cat": "span",
            "ph": "X",
            "ts": round(ts, 3),
            "dur": round(dur, 3),
            "pid": pid,
            "tid": tid,
            "args": _args(rec),
        })
        for c in rec.children:
            visit(c, pid, tid)

    for i, rec in enumerate(roots):
        # Each root gets its own thread row so concurrent roots
        # (threads, re-rooted workers) never stack on one track.
        visit(rec, MAIN_PID, i)

    for pid, label in sorted(pids.items()):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
    ts_metrics = round(t_end, 3)
    for name, value in sorted(snapshot.get("counters", {}).items()):
        events.append({
            "name": name,
            "cat": "counter",
            "ph": "C",
            "ts": ts_metrics,
            "pid": MAIN_PID,
            "tid": 0,
            "args": {"value": value},
        })
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        events.append({
            "name": name,
            "cat": "histogram",
            "ph": "C",
            "ts": ts_metrics,
            "pid": MAIN_PID,
            "tid": 0,
            "args": {
                "count": h.get("count", 0),
                "mean": h.get("mean", 0.0),
                "p50": h.get("p50", 0.0),
                "p90": h.get("p90", 0.0),
                "p99": h.get("p99", 0.0),
            },
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": CHROME_TRACE_SCHEMA},
    }


def write_chrome_trace(
    path, roots: list | None = None, snapshot: dict | None = None
) -> dict:
    """Write :func:`chrome_trace` JSON to ``path``; returns the doc."""
    doc = chrome_trace(roots, snapshot)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a loadable trace.

    Checks the envelope and, for every event, the fields Perfetto's
    importer requires: a ``ph`` phase, numeric ``ts`` (plus ``dur``
    for complete events), and integer ``pid``/``tid``.
    """
    problems: list[str] = []
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        raise ValueError("trace missing 'traceEvents' list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if ev.get("ph") not in ("X", "M", "C", "B", "E", "i"):
            problems.append(f"{where}: bad ph {ev.get('ph')!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if ev.get("ph") != "M":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: missing numeric ts")
        if ev.get("ph") == "X":
            if not isinstance(ev.get("dur"), (int, float)):
                problems.append(f"{where}: complete event missing dur")
    if problems:
        raise ValueError("invalid chrome trace: " + "; ".join(problems))


def jsonl_events(
    roots: list | None = None, snapshot: dict | None = None
) -> list[dict]:
    """Flatten the trace + metrics into a list of JSONL-ready events.

    Span events carry ``type/name/ts_us/dur_us/pid/depth/attrs/counts``
    in depth-first order; metric events follow (``counter``, ``gauge``,
    ``histogram`` with percentile summaries).  The first line is a
    header event stamping the schema.
    """
    if roots is None:
        roots = _trace.trace_roots()
    if snapshot is None:
        snapshot = _metrics.registry().snapshot()
    t0 = _forest_t0(roots)
    out: list[dict] = [{"type": "header", "schema": JSONL_SCHEMA}]

    def visit(rec, pid: int, depth: int) -> None:
        pid = _span_pid(rec, pid)
        out.append({
            "type": "span",
            "name": rec.name,
            "ts_us": round((rec.start - t0) * 1e6, 3) if rec.start else 0.0,
            "dur_us": round(rec.duration * 1e6, 3),
            "pid": pid,
            "depth": depth,
            "attrs": {str(k): v for k, v in rec.attrs.items()},
            "counts": dict(rec.counts),
        })
        for c in rec.children:
            visit(c, pid, depth + 1)

    for rec in roots:
        visit(rec, MAIN_PID, 0)
    for name, value in sorted(snapshot.get("counters", {}).items()):
        out.append({"type": "counter", "name": name, "value": value})
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        out.append({"type": "gauge", "name": name, "value": value})
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        out.append({"type": "histogram", "name": name, **h})
    return out


def write_jsonl(
    path, roots: list | None = None, snapshot: dict | None = None
) -> list[dict]:
    """Write :func:`jsonl_events` to ``path``, one object per line."""
    events = jsonl_events(roots, snapshot)
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev, sort_keys=True))
            fh.write("\n")
    return events


_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name: prefix + sanitized name."""
    out = _PROM_BAD.sub("_", prefix + name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_num(value) -> str:
    """Render a sample value; integers stay integral."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(
    snapshot: dict | None = None, *, prefix: str = "repro_"
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    Counters become ``<prefix><name>_total``; gauges keep their name;
    histograms emit the conventional trio -- *cumulative*
    ``_bucket{le="..."}`` series ending in ``le="+Inf"``, ``_sum``,
    and ``_count``.  Dots and other illegal characters in registry
    names are mapped to underscores (``cache.hits`` ->
    ``repro_cache_hits_total``).

    Histogram buckets carrying an exemplar (a trace id recorded by
    ``Histogram.observe(..., exemplar=...)``) render it OpenMetrics
    style as a ``# {trace_id="..."} <value>`` suffix on the bucket
    line, so a spike in a latency bucket links straight to a trace.
    Snapshots without exemplars render byte-identically to before.
    """
    if snapshot is None:
        snapshot = _metrics.registry().snapshot()
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_num(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_num(value)}")
    for name, h in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        bounds, counts, overflow = _metrics._parse_buckets(
            h.get("buckets", {})
        )
        exemplars = h.get("exemplars") or {}

        def bucket_line(label: str, cum: int, key: str) -> str:
            line = f'{metric}_bucket{{le="{label}"}} {cum}'
            ex = exemplars.get(key)
            if ex and ex.get("trace_id"):
                line += (
                    f' # {{trace_id="{ex["trace_id"]}"}}'
                    f' {_prom_num(float(ex.get("value", 0.0)))}'
                )
            return line

        cum = 0
        for edge, n in zip(bounds, counts):
            cum += n
            lines.append(bucket_line(_prom_num(edge), cum, f"le_{edge}"))
        cum += overflow
        lines.append(bucket_line("+Inf", cum, "overflow"))
        lines.append(f"{metric}_sum {_prom_num(h.get('sum', 0))}")
        lines.append(f"{metric}_count {h.get('count', 0)}")
    return "\n".join(lines) + "\n"


def prometheus_info(
    name: str, labels: dict[str, str], *, prefix: str = "repro_"
) -> str:
    """An *info-style* metric: a constant-1 gauge carrying identity labels.

    The conventional way to expose build/configuration facts
    (``repro_accel_backend{backend="numpy",...} 1``): the value never
    changes, the labels are the payload, and dashboards join on them.
    Label values are escaped per the exposition format.
    """
    metric = _prom_name(name, prefix)
    rendered = ",".join(
        '{}="{}"'.format(
            k,
            str(v).replace("\\", "\\\\").replace('"', '\\"').replace(
                "\n", "\\n"
            ),
        )
        for k, v in sorted(labels.items())
    )
    return (
        f"# TYPE {metric} gauge\n"
        f"{metric}{{{rendered}}} 1\n"
    )


def write_prometheus(
    path, snapshot: dict | None = None, *, prefix: str = "repro_"
) -> str:
    """Atomically write :func:`prometheus_text` to ``path``.

    Temp-file + rename because this file is rewritten mid-run by the
    sweep watchdog while scrapers read it; returns the text.
    """
    text = prometheus_text(snapshot, prefix=prefix)
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return text
