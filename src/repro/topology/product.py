"""Cartesian product networks (Section 3.2, ref. [11]).

``ProductNetwork(A, B)`` has nodes ``(a, b)``; ``(a, b) ~ (a', b)``
whenever ``a ~ a'`` in A, and ``(a, b) ~ (a, b')`` whenever ``b ~ b'``
in B.  Arranging nodes in a grid with ``a`` as the column coordinate
and ``b`` as the row coordinate makes every A-edge a row edge and every
B-edge a column edge -- exactly the *orthogonal* structure the
multilayer scheme needs, which is why the paper's Section 3.2 reduces
product-network layout to the collinear layouts of the factors.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node

__all__ = ["ProductNetwork"]


class ProductNetwork(Network):
    """The Cartesian product ``A x B``."""

    def __init__(self, a: Network, b: Network, *, name: str | None = None):
        self.a = a
        self.b = b
        self.name = name or f"({a.name}) x ({b.name})"

    def _build_nodes(self) -> Sequence[Node]:
        return [(x, y) for y in self.b.nodes for x in self.a.nodes]

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        for y in self.b.nodes:
            for (u, v) in self.a.edges:
                edges.append(((u, y), (v, y)))
        for x in self.a.nodes:
            for (u, v) in self.b.edges:
                edges.append(((x, u), (x, v)))
        return edges
