"""Layout serialization round-trips."""

import pytest

from repro.core import layout_ccc, layout_folded_hypercube, layout_kary
from repro.grid.io import (
    dump_layout,
    layout_from_json,
    layout_to_json,
    load_layout,
)
from repro.grid.validate import validate_layout


def roundtrip(lay):
    return layout_from_json(layout_to_json(lay))


class TestRoundtrip:
    def test_kary_exact(self):
        lay = layout_kary(3, 2, layers=4)
        back = roundtrip(lay)
        assert back.summary() == lay.summary()
        assert back.edge_multiset() == lay.edge_multiset()
        validate_layout(back)

    def test_cluster_layout(self):
        lay = layout_ccc(3)
        back = roundtrip(lay)
        assert back.summary() == lay.summary()
        validate_layout(back)

    def test_extra_links(self):
        lay = layout_folded_hypercube(4, layers=4)
        back = roundtrip(lay)
        assert back.wire_lengths_by_edge() == lay.wire_lengths_by_edge()

    def test_tuple_labels_restored(self):
        lay = layout_kary(3, 2)
        back = roundtrip(lay)
        assert set(back.placements) == set(lay.placements)
        assert all(isinstance(v, tuple) for v in back.placements)

    def test_meta_preserved(self):
        lay = layout_kary(3, 2)
        back = roundtrip(lay)
        assert back.meta["row_tracks"] == lay.meta["row_tracks"]

    def test_file_io(self, tmp_path):
        lay = layout_kary(3, 2)
        path = tmp_path / "layout.json"
        dump_layout(lay, path)
        back = load_layout(path)
        assert back.summary() == lay.summary()

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            layout_from_json('{"format": 99}')

    def test_folded_layout_layers_roundtrip(self):
        from repro.core.folding import fold_layout
        from repro.core import layout_hypercube

        lay = fold_layout(layout_hypercube(6, layers=2), 4)
        back = roundtrip(lay)
        assert {p.layer for p in back.placements.values()} == {1, 3}
        validate_layout(back)


class TestZooRoundtrip:
    """Every zoo layout survives the JSON round-trip exactly."""

    def test_all_zoo_layouts(self):
        from repro.cli import _zoo_dispatch, _zoo_networks

        for net in _zoo_networks():
            lay = _zoo_dispatch(net, 4)
            back = roundtrip(lay)
            assert back.summary() == lay.summary(), net.name
            assert back.edge_multiset() == lay.edge_multiset(), net.name
            assert (
                back.wire_lengths_by_edge() == lay.wire_lengths_by_edge()
            ), net.name

    def test_clone_layout_is_independent(self):
        from repro.grid.io import clone_layout

        lay = layout_kary(3, 2, layers=4)
        twin = clone_layout(lay)
        assert twin.summary() == lay.summary()
        twin.wires.pop()
        assert len(twin.wires) == len(lay.wires) - 1


class TestCli:
    def test_layout_command(self, tmp_path, capsys):
        from repro.cli import main

        svg = tmp_path / "out.svg"
        js = tmp_path / "out.json"
        rc = main([
            "layout", "kary:3,2", "-L", "4", "--validate",
            "--svg", str(svg), "--json", str(js),
        ])
        assert rc == 0
        assert svg.read_text().startswith("<svg")
        assert load_layout(js).summary()["nodes"] == 9
        out = capsys.readouterr().out
        assert "validation: OK" in out

    def test_figures_command(self, capsys):
        from repro.cli import main

        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "o" in out

    def test_predict_command(self, capsys):
        from repro.cli import main

        assert main(["predict", "ghc:4,2", "-L", "4"]) == 0
        assert "paper leading terms" in capsys.readouterr().out

    def test_unknown_family(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["layout", "moebius:4"])

    def test_parse_network(self):
        from repro.cli import parse_network

        net = parse_network("ghc:3,4")
        assert net.num_nodes == 12
        net = parse_network("star:4")
        assert net.num_nodes == 24

    def test_zoo_command(self, capsys):
        from repro.cli import main

        assert main(["zoo", "-L", "4"]) == 0
        out = capsys.readouterr().out
        assert "network zoo" in out and "CCC(4)" in out

    def test_simulate_command(self, capsys):
        from repro.cli import main

        rc = main([
            "simulate", "hypercube:4", "-L", "4",
            "--kernel", "transpose", "--mode", "cut_through",
            "--message-length", "2",
        ])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_simulate_unknown_kernel(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="kernel"):
            main(["simulate", "hypercube:3", "--kernel", "chaos"])

    def test_simulate_zoo_kernel_both_engines(self, capsys):
        from repro.cli import main

        args = [
            "simulate", "hypercube:3", "--kernel", "uniform",
            "--rate", "0.4", "--duration", "12", "--seed", "5",
        ]
        assert main(args + ["--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert main(args + ["--engine", "oracle"]) == 0
        oracle_out = capsys.readouterr().out
        # Same numbers either way; only the title names the engine.
        assert (
            fast_out.replace("fast engine", "X")
            == oracle_out.replace("oracle engine", "X")
        )

    def test_simulate_saturation_sweep(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out_json = tmp_path / "sat.json"
        rc = main([
            "simulate", "hypercube:3", "--saturation", "0.05", "1.0",
            "--duration", "16", "--json", str(out_json),
        ])
        assert rc == 0
        assert "saturation sweep" in capsys.readouterr().out
        doc = json.loads(out_json.read_text())
        assert [r["rate"] for r in doc["rows"]] == [0.05, 1.0]
        assert "knee" in doc

    def test_simulate_trace_replay(self, tmp_path, capsys):
        from repro.cli import main
        from repro.routing import save_trace, uniform
        from repro.topology import Hypercube

        trace = tmp_path / "trace.jsonl"
        save_trace(trace, uniform(Hypercube(3), rate=0.3, duration=8, seed=1))
        rc = main([
            "simulate", "hypercube:3", "--trace-file", str(trace),
        ])
        assert rc == 0
        assert "makespan" in capsys.readouterr().out

    def test_cost_command(self, capsys):
        from repro.cli import main

        rc = main(["cost", "kary:3,2", "--layer-sweep", "2", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chip cost" in out

    def test_fold_command(self, tmp_path, capsys):
        from repro.cli import main

        svg = tmp_path / "fold.svg"
        rc = main(["fold", "hypercube:4", "-L", "4", "--svg", str(svg)])
        assert rc == 0
        assert svg.read_text().startswith("<svg")
        assert "folded" in capsys.readouterr().out

    def test_stack_command(self, capsys):
        from repro.cli import main

        rc = main(["stack", "3", "-L", "6"])
        assert rc == 0
        assert "3-D stacked" in capsys.readouterr().out
