"""Layout cost model: cost(A, L, L_A, vias).

Section 2.2: "The cost of a layout under the multilayer grid model is
a function of A, L, and L_A, as well as other parameters."  This module
provides the standard manufacturing-flavored instantiation so benches
and the chip-planner example can rank layouts by *cost* as well as by
geometry:

* silicon cost scales with area times a per-layer process premium
  (each wiring layer adds masks/steps; each active layer adds more);
* yield falls with area (Poisson defect model), dividing the cost of a
  good die;
* vias add a small marginal cost (and are counted per layout).

Defaults are arbitrary-unit but internally consistent; what the paper's
argument needs is the *comparison*: an L-layer multilayer layout vs a
folded or 2-layer layout of the same network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.grid.layout import GridLayout

__all__ = ["CostModel", "chip_cost", "CostBreakdown"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Technology/economics parameters (arbitrary units)."""

    area_unit_cost: float = 1.0       # per grid cell, base process
    wiring_layer_premium: float = 0.12  # per extra wiring layer beyond 2
    active_layer_premium: float = 0.25  # per extra active layer beyond 1
    via_cost: float = 0.001           # per via
    defect_density: float = 0.0       # defects per grid cell (yield)

    def layer_factor(self, layers: int, active_layers: int) -> float:
        return (
            1.0
            + self.wiring_layer_premium * max(layers - 2, 0)
            + self.active_layer_premium * max(active_layers - 1, 0)
        )

    def yield_fraction(self, area: int) -> float:
        if self.defect_density <= 0:
            return 1.0
        return math.exp(-self.defect_density * area)


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """Itemized cost of one layout."""

    area: int
    layers: int
    active_layers: int
    vias: int
    silicon: float
    via_total: float
    yield_fraction: float
    total: float

    def as_dict(self) -> dict:
        return {
            "area": self.area,
            "L": self.layers,
            "L_A": self.active_layers,
            "vias": self.vias,
            "silicon": self.silicon,
            "via_total": self.via_total,
            "yield": self.yield_fraction,
            "total": self.total,
        }


def chip_cost(layout: GridLayout, model: CostModel | None = None) -> CostBreakdown:
    """Cost a layout under ``model`` (defaults are unit-scale)."""
    model = model or CostModel()
    area = layout.area
    active_layers = len({p.layer for p in layout.placements.values()}) or 1
    vias = layout.via_count()
    silicon = area * model.area_unit_cost * model.layer_factor(
        layout.layers, active_layers
    )
    via_total = vias * model.via_cost
    yld = model.yield_fraction(area)
    total = (silicon + via_total) / yld
    return CostBreakdown(
        area=area,
        layers=layout.layers,
        active_layers=active_layers,
        vias=vias,
        silicon=silicon,
        via_total=via_total,
        yield_fraction=yld,
        total=total,
    )
