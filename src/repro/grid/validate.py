"""Legality checker for the multilayer grid model.

The checks implement Section 2's rules:

1. **Edge-disjointness.** No two wires may overlap: on each layer,
   no grid *edge* (unit segment between adjacent grid points) is used
   by two wires.  Wires may cross at a grid point (Thompson's model
   explicitly allows crossings), so point sharing is legal as long as
   neither wire bends there.
2. **No knock-knees / shared vias.**  A grid point may be a bend or via
   of at most one wire.  (Two wires bending at the same point is the
   knock-knee configuration the Thompson model forbids, ref. [6].)
3. **Layer budget.**  Every segment lies on a layer in ``1..L``.
4. **Node interference.**  No wire segment passes through the open
   interior of any node square, and node squares are pairwise
   interior-disjoint.
5. **Pin attachment.**  Each wire's endpoints lie on the perimeter of
   the squares of the nodes it connects, and no two wires share a pin
   point of the same node.
6. **Self-consistency.**  Each wire is a connected path (enforced at
   construction) whose consecutive same-layer segments are not
   collinear (those should have been merged) and which does not
   overlap itself.

``validate_layout`` raises :class:`LayoutError` with a precise message
on the first violation, or returns a small report on success.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro import obs
from repro.grid.layout import GridLayout
from repro.grid.wire import Wire

__all__ = ["LayoutError", "validate_layout"]


class LayoutError(AssertionError):
    """A multilayer-grid-model rule violation."""


def validate_layout(
    layout: GridLayout,
    *,
    check_node_interference: bool = True,
    check_pins: bool = True,
    check_parity: bool = False,
) -> dict:
    """Check ``layout`` against the multilayer grid model rules.

    Parameters
    ----------
    check_node_interference:
        Verify no wire crosses a node interior and nodes are disjoint.
        (Quadratic-ish in crowded layouts; can be disabled for very
        large sweeps after spot-checking.)
    check_pins:
        Verify wire endpoints land on their nodes' perimeters, uniquely.
    check_parity:
        Additionally enforce the *scheme convention* that horizontal
        segments use odd layers and vertical segments even layers.  Not
        a model rule; useful when testing the orthogonal scheme.

    Returns a report dict (counts of segments, conflicts checked).
    """
    checks: list = [_check_layer_budget]
    if check_parity:
        checks.append(_check_parity)
    checks += [
        _check_wire_self_consistency,
        _check_edge_disjointness,
        _check_bend_exclusivity,
        _check_via_occupancy,
    ]
    if check_node_interference:
        checks.append(_check_node_interference)
    if check_pins:
        checks.append(_check_pins)

    seg_count = 0
    with obs.span(
        "validate", wires=len(layout.wires), layers=layout.layers
    ) as sp:
        for check in checks:
            with obs.span(check.__name__.lstrip("_")):
                result = check(layout)
            if check is _check_edge_disjointness:
                seg_count = result
        sp.add("checks", len(checks)).add("segments", seg_count)
    obs.count("validator.layouts_validated")
    obs.count("validator.checks_run", len(checks))
    obs.count("validator.segments_checked", seg_count)
    return {
        "segments": seg_count,
        "wires": len(layout.wires),
        "nodes": len(layout.placements),
        "layers": layout.layers,
        "checks": len(checks),
    }


# ---------------------------------------------------------------------------


def _check_layer_budget(layout: GridLayout) -> None:
    for w in layout.wires:
        used = w.layers_used()
        if used and (min(used) < 1 or max(used) > layout.layers):
            raise LayoutError(
                f"wire {w.u}-{w.v}: layers {sorted(used)} exceed the "
                f"L={layout.layers} budget"
            )


def _check_parity(layout: GridLayout) -> None:
    for w in layout.wires:
        for s in w.segments:
            if s.horizontal and s.layer % 2 == 0:
                raise LayoutError(
                    f"parity: horizontal segment on even layer {s.layer} "
                    f"in wire {w.u}-{w.v}"
                )
            if s.vertical and s.layer % 2 == 1:
                raise LayoutError(
                    f"parity: vertical segment on odd layer {s.layer} "
                    f"in wire {w.u}-{w.v}"
                )


def _check_wire_self_consistency(layout: GridLayout) -> None:
    for w in layout.wires:
        for a, b in zip(w.segments, w.segments[1:]):
            if a.layer == b.layer and a.horizontal == b.horizontal:
                raise LayoutError(
                    f"wire {w.u}-{w.v}: consecutive collinear same-layer "
                    f"segments should be merged: {a} / {b}"
                )


def _check_edge_disjointness(layout: GridLayout) -> int:
    """Sweep each (layer, grid line) for properly-overlapping spans."""
    lines: dict[tuple, list[tuple[int, int, int]]] = defaultdict(list)
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            lo, hi = s.span
            lines[s.line].append((lo, hi, wi))
    total = 0
    for line, spans in lines.items():
        total += len(spans)
        spans.sort()
        # Sentinel must sit below any coordinate: spans may be negative
        # (e.g. corrupted layouts fed in by the differential fuzzer).
        max_hi: float = float("-inf")
        max_hi_owner = -1
        for lo, hi, wi in spans:
            if lo < max_hi:
                other = layout.wires[max_hi_owner]
                mine = layout.wires[wi]
                raise LayoutError(
                    f"overlap on {line}: wire {mine.u}-{mine.v} and wire "
                    f"{other.u}-{other.v} share grid edges in "
                    f"[{lo}, {min(hi, max_hi)}]"
                )
            if hi > max_hi:
                max_hi = hi
                max_hi_owner = wi
    return total


def _check_bend_exclusivity(layout: GridLayout) -> None:
    """Bends and vias must be node-disjoint in the 3-D grid.

    A via between layers a and b occupies the 3-D grid nodes
    (x, y, a..b); a same-layer turn occupies (x, y, a).  Two wires may
    meet at the same planar point only if their occupied layer ranges
    are disjoint -- e.g. a layer-1/2 via and a layer-3/4 via may stack,
    but two same-layer turns at one point are a knock-knee and two
    overlapping via stacks would share a z-edge or node.
    """
    occupied: dict[tuple[int, int], list[tuple[int, int, int]]] = {}

    def claim(pt: tuple[int, int], lo: int, hi: int, wi: int) -> None:
        for (plo, phi, owner) in occupied.get(pt, ()):
            if owner != wi and lo <= phi and plo <= hi:
                a, b = layout.wires[owner], layout.wires[wi]
                raise LayoutError(
                    f"knock-knee / via conflict at {pt}: wires "
                    f"{a.u}-{a.v} (layers {plo}-{phi}) and {b.u}-{b.v} "
                    f"(layers {lo}-{hi}) occupy overlapping layers"
                )
        occupied.setdefault(pt, []).append((lo, hi, wi))

    for wi, w in enumerate(layout.wires):
        if w.riser is not None:
            x, y, zlo, zhi = w.riser
            claim((x, y), zlo, zhi, wi)
            continue
        bends = w.bends()
        for i in range(len(w.segments) - 1):
            s1, s2 = w.segments[i], w.segments[i + 1]
            lo = min(s1.layer, s2.layer)
            hi = max(s1.layer, s2.layer)
            claim(bends[i], lo, hi, wi)


def _check_via_occupancy(layout: GridLayout) -> None:
    """A via's z-run blocks its planar point on every layer it spans.

    The bend-exclusivity check covers via-vs-via and via-vs-bend; this
    one covers via-vs-*straight-segment*: no wire may run through a
    grid point occupied by another wire's via on one of the via's
    strictly interior layers.  (Sharing the via's *endpoint* layer at a
    point is a crossing, which the Thompson model permits; multi-layer
    fold vias of Section 2.2's folding baseline span three layers and
    are the main clients of this rule.)
    """
    import bisect

    # Collect the z-runs first: most layouts have few (or no) vias
    # spanning interior layers, and the line index below only needs
    # the layers those interiors touch.
    runs: list[tuple[int, Wire, tuple[int, int], int, int]] = []
    interior_layers: set[int] = set()
    for wi, w in enumerate(layout.wires):
        for pt, zlo, zhi in w.z_occupancy():
            if zhi - zlo >= 2:
                runs.append((wi, w, pt, zlo, zhi))
                interior_layers.update(range(zlo + 1, zhi))
    if not runs:
        return

    # Index spans per (orientation, layer, line-coordinate), restricted
    # to the layers some via interior crosses.
    lines: dict[tuple, list[tuple[int, int, int]]] = defaultdict(list)
    for wi, w in enumerate(layout.wires):
        for s in w.segments:
            if s.layer in interior_layers:
                lo, hi = s.span
                lines[s.line].append((lo, hi, wi))
    index: dict[tuple, tuple[list[int], list[int]]] = {}
    for key, spans in lines.items():
        spans.sort()
        prefix_max_hi: list[int] = []
        top = spans[0][1]
        for _, hi, _ in spans:
            if hi > top:
                top = hi
            prefix_max_hi.append(top)
        index[key] = ([lo for lo, _, _ in spans], prefix_max_hi)

    def segment_covers(key: tuple, coord: int, self_wire: int) -> int | None:
        spans = lines.get(key)
        if not spans:
            return None
        starts, prefix_max_hi = index[key]
        # Walk candidates with lo <= coord from the right; once the
        # prefix's max hi drops to coord, nothing earlier can reach it.
        i = bisect.bisect_right(starts, coord) - 1
        while i >= 0 and prefix_max_hi[i] > coord:
            lo, hi, wi = spans[i]
            # Exclude pure endpoint touching: that is a crossing.
            if lo < coord < hi and wi != self_wire:
                return wi
            i -= 1
        return None

    for wi, w, pt, zlo, zhi in runs:
        for layer in range(zlo + 1, zhi):
            x, y = pt
            hit = segment_covers(("h", layer, y), x, wi)
            if hit is None:
                hit = segment_covers(("v", layer, x), y, wi)
            if hit is not None:
                other = layout.wires[hit]
                raise LayoutError(
                    f"via of wire {w.u}-{w.v} at {pt} (layers "
                    f"{zlo}-{zhi}) is pierced on layer {layer} by "
                    f"wire {other.u}-{other.v}"
                )


def _check_node_interference(layout: GridLayout) -> None:
    """Nodes are interior-disjoint and unpierced, per active layer.

    The multilayer 3-D grid model embeds a node in its active layer(s)
    only: two nodes on *different* active layers may overlap in plan
    view (that is the whole point of folding, Section 2.2), and a wire
    conflicts with a node only when its segment's layer matches the
    node's.  Multilayer *2-D* grid layouts place every node on layer 1,
    so for them this degenerates to the planar rule.
    """
    by_layer: dict[int, list] = defaultdict(list)
    for p in layout.placements.values():
        by_layer[p.layer].append(p)

    import bisect

    for layer, placements in by_layer.items():
        placements.sort(key=lambda p: p.rect.x0)
        active: list = []
        for p in placements:
            active = [q for q in active if q.rect.x1 > p.rect.x0]
            for q in active:
                if p.rect.intersects(q.rect):
                    raise LayoutError(
                        f"node squares overlap on layer {layer}: "
                        f"{p.node!r} at {p.rect} and {q.node!r} at {q.rect}"
                    )
            active.append(p)

    # Wire segments may not pass through the open interior of a node
    # on the segment's own layer.  This is the validator's hottest
    # sweep, so it prunes hard: segments are bucketed by layer once
    # (not rescanned per layer), and each layer's node rects are
    # grouped into y-bands -- same (y0, y1) extent -- inside which
    # interior-disjointness makes the x-intervals non-overlapping and
    # sorted, so a bisect plus a bounded backward walk visits only
    # rects whose x- and y-ranges genuinely overlap the segment's.
    segments_by_layer: dict[int, list[tuple]] = defaultdict(list)
    for w in layout.wires:
        for s in w.segments:
            if s.layer in by_layer:
                segments_by_layer[s.layer].append((s, w))

    for layer, segs in segments_by_layer.items():
        banded: dict[tuple[int, int], list] = defaultdict(list)
        for p in by_layer[layer]:
            # Zero-extent rects have no interior to cross, and (being
            # exempt from disjointness) would break the sorted-x1
            # invariant the backward walk relies on.
            if p.rect.w and p.rect.h:
                banded[(p.rect.y0, p.rect.y1)].append(p)
        bands = []
        for (y0, y1), ps in banded.items():
            ps.sort(key=lambda p: p.rect.x0)
            bands.append((y0, y1, [p.rect.x0 for p in ps], ps))
        for s, w in segs:
            sx_lo, sx_hi = (s.x1, s.x2) if s.x1 <= s.x2 else (s.x2, s.x1)
            sy_lo, sy_hi = (s.y1, s.y2) if s.y1 <= s.y2 else (s.y2, s.y1)
            for y0, y1, xs, ps in bands:
                if sy_hi <= y0 or sy_lo >= y1:
                    continue  # no strictly interior y in this band
                i = bisect.bisect_left(xs, sx_hi) - 1
                while i >= 0:
                    p = ps[i]
                    r = p.rect
                    if r.x1 <= sx_lo:
                        break  # x1 sorted within the band: done
                    if r.segment_crosses_interior(s):
                        raise LayoutError(
                            f"wire {w.u}-{w.v} crosses interior of node "
                            f"{p.node!r} at {r}: segment {s}"
                        )
                    i -= 1


def _check_pins(layout: GridLayout) -> None:
    pin_owner: dict[tuple[Hashable, tuple[int, int]], int] = {}
    for wi, w in enumerate(layout.wires):
        pairing = _orient_endpoints(layout, w)
        if pairing is None:
            raise LayoutError(
                f"wire {w.u}-{w.v}: endpoints {w.start}/{w.end} do not lie "
                f"on the perimeters of its nodes"
            )
        for node, pt in pairing:
            key = (node, pt.planar())
            prev = pin_owner.get(key)
            if prev is not None and prev != wi:
                other = layout.wires[prev]
                raise LayoutError(
                    f"pin conflict at {pt.planar()} on node {node!r}: "
                    f"wires {other.u}-{other.v} and {w.u}-{w.v}"
                )
            pin_owner[key] = wi


def _orient_endpoints(layout: GridLayout, w: Wire):
    """Match the wire's geometric endpoints to its (u, v) nodes.

    Multi-segment wires are traced from the u side, but a single-segment
    wire's stored order is normalization-dependent, so both pairings are
    tried.  Returns [(node, point), (node, point)] or None.
    """
    pu = layout.placements.get(w.u)
    pv = layout.placements.get(w.v)
    if pu is None or pv is None:
        raise LayoutError(f"wire {w.u}-{w.v} references an unplaced node")
    s, e = w.start, w.end
    if pu.rect.on_perimeter(s.x, s.y) and pv.rect.on_perimeter(e.x, e.y):
        return [(w.u, s), (w.v, e)]
    if pu.rect.on_perimeter(e.x, e.y) and pv.rect.on_perimeter(s.x, s.y):
        return [(w.u, e), (w.v, s)]
    return None


def check_topology(layout: GridLayout, expected_edges: list[tuple]) -> None:
    """Verify the routed wires realize exactly ``expected_edges``.

    ``expected_edges`` is a list of (u, v) pairs (repeats = parallel
    edges).  Raises :class:`LayoutError` on any mismatch.
    """
    want: dict[tuple, int] = {}
    for u, v in expected_edges:
        a, b = _norm_pair(u, v)
        want[(a, b)] = want.get((a, b), 0) + 1
    have = layout.edge_multiset()
    if want != have:
        missing = {k: c for k, c in want.items() if have.get(k, 0) != c}
        extra = {k: c for k, c in have.items() if want.get(k, 0) != c}
        raise LayoutError(
            "routed edge multiset differs from the network: "
            f"missing/changed {dict(list(missing.items())[:5])} ... "
            f"extra/changed {dict(list(extra.items())[:5])}"
        )


def _norm_pair(u, v):
    from repro.grid.wire import _sort_key

    if _sort_key(v) < _sort_key(u):
        return v, u
    return u, v
