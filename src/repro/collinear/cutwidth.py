"""Exact minimum cutwidth: the true optimum for collinear layouts.

A collinear layout under a node order needs exactly max-cut(order)
tracks (left-edge optimality), so the *minimum over orders* -- the
graph's cutwidth -- is the best any collinear layout can do.  This
module computes it exactly by dynamic programming over vertex subsets:

    dp[S] = min over v in S of max(dp[S - v], cut(S))

where ``cut(S)`` counts edges between S and its complement.  O(2^n n)
time with bitmask adjacency; practical to ~20 nodes, which covers the
instances needed to certify the paper's orders:

* the ring's 2 tracks and K_N's |N^2/4| are exactly optimal;
* binary order achieves the hypercube's true cutwidth (|2N/3|,
  Harper); the 3-ary 2-cube's 8 tracks are exactly optimal;
* the left-edge GHC(4,4) layout (18 tracks, beating the paper's
  recurrence value of 20) is certified optimal too.

The DP kernels themselves -- the lowest-set-bit carry recurrence of
the pure backend and the popcount-layer gather of the numpy backend --
live in the :mod:`repro.accel` backend registry (``cutwidth_dp`` /
``cut_profile``); this module keeps the public API, the node-limit
policy and the backtracking, and dispatches to whichever backend the
registry selected (``REPRO_ACCEL_BACKEND`` overrides).
"""

from __future__ import annotations

from repro import accel as _accel
from repro import obs

# Shared bitmask/multigraph helpers now live in the accel package;
# the old private names stay importable for callers and benches.
from repro.accel import bit_adjacency as _bit_adjacency  # noqa: F401
from repro.accel import edge_weights as _edge_weights  # noqa: F401
from repro.topology.base import Network

__all__ = [
    "DP_NODE_LIMIT",
    "exact_cutwidth",
    "optimal_order",
    "cutwidth_certificate",
]

#: Largest node count any exact-cutwidth entry point accepts by
#: default.  The DP holds 2^n states (plus an equally sized cut table
#: and carry rows), so 20 nodes ~ 1M states is where both memory and
#: time stop being interactive.  All of :func:`exact_cutwidth`,
#: :func:`optimal_order` and :func:`cutwidth_certificate` share this
#: cap -- they run the same DP, so there is no reason for their limits
#: to differ.
DP_NODE_LIMIT = 20


def _check_limit(fn_name: str, n: int, limit: int) -> None:
    if n > limit:
        raise ValueError(
            f"{fn_name}: {n} nodes exceed the exact-DP node limit "
            f"({limit}); the DP holds 2^n states"
        )


def _cutwidth_dp(network: Network, n: int):
    """The full ``(dp, cut)`` tables over all 2^n vertex subsets.

    Both tables index by subset bitmask; the numpy backend returns
    ndarray rows, the pure backend plain lists -- callers only index
    and compare.
    """
    return _accel.get_backend().cutwidth_dp(network, n)


def exact_cutwidth(network: Network, *, limit: int = DP_NODE_LIMIT) -> int:
    """The graph's exact cutwidth (minimum collinear track count).

    Raises ``ValueError`` beyond ``limit`` nodes (default
    :data:`DP_NODE_LIMIT`; the DP holds 2^n entries).  Parallel edges
    each count toward the cut.
    """
    n = network.num_nodes
    _check_limit("exact_cutwidth", n, limit)
    if n <= 1:
        return 0
    size = 1 << n
    with obs.span("exact_cutwidth", n=n, states=size):
        dp, _ = _cutwidth_dp(network, n)
    obs.count("cutwidth.dp_runs")
    obs.count("cutwidth.dp_states", size)
    return int(dp[size - 1])


def cutwidth_certificate(
    network: Network, *, limit: int = DP_NODE_LIMIT
) -> tuple[int, list]:
    """``(cutwidth, order)`` with the order achieving the cutwidth.

    One DP run instead of the two that separate
    :func:`exact_cutwidth` + :func:`optimal_order` calls would cost --
    the differential fuzzer certifies every small network this way, so
    the saving is on its hot path.
    """
    n = network.num_nodes
    _check_limit("cutwidth_certificate", n, limit)
    order = optimal_order(network, limit=limit)
    if not order:
        return 0, order
    # The order's max cut IS the cutwidth (backtracking preserves the
    # dp optimum); recompute it directly instead of re-running the DP.
    # Each edge contributes +1 to every gap it spans: the backend's
    # ``cut_profile`` kernel accumulates a difference array and
    # prefix-sums it, O(E + n) instead of the O(E * span) of walking
    # every gap per edge.
    pos = {v: p for p, v in enumerate(order)}
    pairs = []
    for u, v in network.edges:
        pu, pv = pos[u], pos[v]
        if pu > pv:
            pu, pv = pv, pu
        pairs.append((pu, pv))
    best = _accel.get_backend().cut_profile(len(order), pairs)
    return int(best), order


def optimal_order(network: Network, *, limit: int = DP_NODE_LIMIT) -> list:
    """An order achieving the exact cutwidth, by DP backtracking."""
    n = network.num_nodes
    _check_limit("optimal_order", n, limit)
    if n == 0:
        return []
    nodes = list(network.nodes)
    size = 1 << n
    with obs.span("optimal_order", n=n, states=size):
        dp, cut = _cutwidth_dp(network, n)
    obs.count("cutwidth.dp_runs")
    obs.count("cutwidth.dp_states", size)

    # Backtrack: peel off a final vertex that realizes dp[S].
    order_rev: list[int] = []
    s = size - 1
    while s:
        t = s
        while t:
            b = t & -t
            t -= b
            if max(dp[s - b], cut[s]) == dp[s]:
                order_rev.append(b.bit_length() - 1)
                s -= b
                break
        else:  # pragma: no cover - dp invariant guarantees a choice
            raise AssertionError("dp backtrack failed")
    return [nodes[i] for i in reversed(order_rev)]
