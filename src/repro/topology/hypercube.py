"""Hypercubes and their augmented variants (Sections 5.1 and 5.3).

* :class:`Hypercube` -- the binary n-cube, integer node labels.
* :class:`FoldedHypercube` -- one extra link per node to its bitwise
  complement (N/2 extra links total), ref. [1].
* :class:`EnhancedCube` -- one extra outgoing link per node to a random
  node (N extra links), ref. [26].  The draw is seeded so layouts and
  benchmarks are reproducible; the paper's area bound is independent of
  the draw.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.topology.base import Edge, Network, Node

__all__ = ["Hypercube", "FoldedHypercube", "EnhancedCube"]


class Hypercube(Network):
    """The n-dimensional binary hypercube on nodes 0 .. 2^n - 1."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("n >= 1")
        self.n = n
        self.name = f"{n}-cube"

    def _build_nodes(self) -> Sequence[Node]:
        return list(range(1 << self.n))

    def _build_edges(self) -> Sequence[Edge]:
        return [
            (u, u ^ (1 << i))
            for u in range(1 << self.n)
            for i in range(self.n)
            if u < u ^ (1 << i)
        ]

    def dimension_of_edge(self, u: int, v: int) -> int:
        x = u ^ v
        if x == 0 or x & (x - 1):
            raise ValueError(f"not a hypercube edge: {u} {v}")
        return x.bit_length() - 1


class FoldedHypercube(Network):
    """Hypercube plus a *diameter* link from each node to its bitwise
    complement.  There are N/2 such extra links."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("n >= 1")
        self.n = n
        self.cube = Hypercube(n)
        self.name = f"folded {n}-cube"

    def _build_nodes(self) -> Sequence[Node]:
        return self.cube._build_nodes()

    def _build_edges(self) -> Sequence[Edge]:
        edges = list(self.cube._build_edges())
        mask = (1 << self.n) - 1
        edges += [(u, u ^ mask) for u in range(1 << self.n) if u < u ^ mask]
        return edges

    def extra_links(self) -> list[Edge]:
        """The diameter links only (used by the Section 5.3 router)."""
        mask = (1 << self.n) - 1
        return [(u, u ^ mask) for u in range(1 << self.n) if u < u ^ mask]


class EnhancedCube(Network):
    """Hypercube plus one extra link per node to a random other node.

    The paper's Section 5.3 counts N extra links; links that would
    duplicate a hypercube edge or self-loop are redrawn, so exactly N
    extra links always exist (as parallel edges between random pairs if
    the draw repeats a pair, matching the "one additional outgoing link
    per node" reading).
    """

    def __init__(self, n: int, *, seed: int = 2000):
        if n < 2:
            raise ValueError("n >= 2")
        self.n = n
        self.seed = seed
        self.cube = Hypercube(n)
        self.name = f"enhanced {n}-cube"

    def _build_nodes(self) -> Sequence[Node]:
        return self.cube._build_nodes()

    def extra_links(self) -> list[Edge]:
        rng = random.Random(self.seed)
        size = 1 << self.n
        cube_edges = {
            tuple(sorted(e)) for e in self.cube._build_edges()
        }
        out: list[Edge] = []
        for u in range(size):
            while True:
                v = rng.randrange(size)
                if v != u and tuple(sorted((u, v))) not in cube_edges:
                    break
            out.append((u, v))
        return out

    def _build_edges(self) -> Sequence[Edge]:
        return list(self.cube._build_edges()) + self.extra_links()
