"""Routing algorithms and traffic patterns."""

import pytest

from repro.routing import (
    all_to_all,
    bit_complement,
    dimension_order_route,
    hot_spot,
    min_wire_routes,
    random_permutation,
    shortest_hop_routes,
    transpose,
)
from repro.routing.paths import layout_link_delays
from repro.core import layout_hypercube, layout_kary
from repro.topology import (
    CompleteGraph,
    GeneralizedHypercube,
    Hypercube,
    KAryNCube,
    Ring,
)


def is_walk(network, path):
    adj = network.adjacency
    return all(b in adj[a] for a, b in zip(path, path[1:]))


class TestDimensionOrder:
    def test_hypercube_route_length(self):
        net = Hypercube(5)
        path = dimension_order_route(net, 0, 31)
        assert len(path) == 6
        assert is_walk(net, path)

    def test_hypercube_route_is_monotone(self):
        net = Hypercube(4)
        path = dimension_order_route(net, 3, 12)
        # Hamming distance decreases by one each hop.
        def hd(a, b):
            return bin(a ^ b).count("1")
        dists = [hd(v, 12) for v in path]
        assert dists == list(range(len(path) - 1, -1, -1))

    def test_trivial_route(self):
        net = Hypercube(3)
        assert dimension_order_route(net, 5, 5) == [5]

    def test_kary_takes_short_way_around(self):
        net = KAryNCube(5, 1)
        path = dimension_order_route(net, (0,), (4,))
        assert path == [(0,), (4,)]  # wraparound, one hop
        assert is_walk(net, path)

    def test_kary_mesh_no_wrap(self):
        net = KAryNCube(5, 1, wraparound=False)
        path = dimension_order_route(net, (0,), (4,))
        assert len(path) == 5

    def test_kary_2d(self):
        net = KAryNCube(4, 2)
        path = dimension_order_route(net, (0, 0), (2, 3))
        assert is_walk(net, path)
        assert path[-1] == (2, 3)
        assert len(path) == 1 + 2 + 1  # dim1: 2 hops, dim0: 1 hop (wrap)

    def test_ghc_one_hop_per_digit(self):
        net = GeneralizedHypercube((5, 5))
        path = dimension_order_route(net, (0, 0), (4, 2))
        assert len(path) == 3
        assert is_walk(net, path)

    def test_unsupported_network(self):
        with pytest.raises(TypeError, match="dimension-order"):
            dimension_order_route(Ring(5), 0, 2)

    def test_matches_bfs_distance_on_hypercube(self):
        net = Hypercube(4)
        for src, dst in [(0, 15), (3, 9), (7, 8)]:
            path = dimension_order_route(net, src, dst)
            assert len(path) - 1 == net.bfs_distances(src)[dst]


class TestRoutingTables:
    def test_shortest_hop_routes(self):
        net = Hypercube(3)
        table = shortest_hop_routes(net)
        for src in net.nodes:
            for dst in net.nodes:
                path = table.route(src, dst)
                assert path[0] == src and path[-1] == dst
                assert len(path) - 1 == bin(src ^ dst).count("1")
                assert is_walk(net, path) or src == dst

    def test_min_wire_routes_prefer_short_wires(self):
        net = Hypercube(4)
        lay = layout_hypercube(4)
        table = min_wire_routes(net, lay)
        delays = layout_link_delays(lay)
        # Each route's total delay must be <= the direct e-cube route's.
        for src, dst in [(0, 15), (5, 10)]:
            route = table.route(src, dst)
            assert route[0] == src and route[-1] == dst
            cost = sum(delays[(a, b)] for a, b in zip(route, route[1:]))
            ecube = dimension_order_route(net, src, dst)
            ecube_cost = sum(
                delays[(a, b)] for a, b in zip(ecube, ecube[1:])
            )
            assert cost <= ecube_cost

    def test_failed_links_rerouted(self):
        net = Hypercube(3)
        # Kill the direct edge 0-1; routes must go around (3 hops).
        table = shortest_hop_routes(net, failed_links={(0, 1)})
        route = table.route(0, 1)
        assert len(route) == 4
        assert (0, 1) not in set(zip(route, route[1:]))

    def test_failed_links_orientation_free(self):
        net = Hypercube(3)
        t1 = shortest_hop_routes(net, failed_links={(1, 0)})
        assert len(t1.route(0, 1)) == 4

    def test_disconnection_raises_keyerror(self):
        net = Ring(4)
        table = shortest_hop_routes(
            net, failed_links={(0, 1), (0, 3)}
        )
        with pytest.raises(KeyError):
            table.route(0, 2)

    def test_link_delays_cover_all_edges(self):
        net = KAryNCube(3, 2)
        lay = layout_kary(3, 2)
        delays = layout_link_delays(lay)
        for u, v in net.edges:
            assert (u, v) in delays and (v, u) in delays
            assert delays[(u, v)] >= 1


class TestTraffic:
    def test_random_permutation_is_permutation(self):
        net = Hypercube(4)
        msgs = random_permutation(net, seed=5)
        srcs = [s for s, _ in msgs]
        dsts = [d for _, d in msgs]
        assert sorted(srcs) == sorted(net.nodes)
        assert sorted(dsts) == sorted(net.nodes)
        assert all(s != d for s, d in msgs)

    def test_random_permutation_seeded(self):
        net = Hypercube(4)
        assert random_permutation(net, seed=5) == random_permutation(net, seed=5)
        assert random_permutation(net, seed=5) != random_permutation(net, seed=6)

    def test_bit_complement_hypercube(self):
        msgs = bit_complement(Hypercube(4))
        assert ((0, 15)) in msgs and ((15, 0)) in msgs

    def test_bit_complement_generic(self):
        msgs = bit_complement(Ring(6))
        assert len(msgs) == 6

    def test_transpose_hypercube(self):
        msgs = transpose(Hypercube(4))
        assert all(s != d for s, d in msgs)
        # Transposing twice is the identity.
        pairs = set(msgs)
        assert all((d, s) in pairs for s, d in msgs)

    def test_transpose_tuple_networks(self):
        msgs = transpose(KAryNCube(4, 2))
        assert all(s != d for s, d in msgs)

    def test_all_to_all_count(self):
        net = CompleteGraph(5)
        assert len(all_to_all(net)) == 20

    def test_hot_spot(self):
        net = Hypercube(3)
        msgs = hot_spot(net, spot=0)
        assert len(msgs) == 7
        assert all(d == 0 for _, d in msgs)

    def test_hot_spot_fraction(self):
        net = Hypercube(4)
        msgs = hot_spot(net, fraction=0.5, seed=1)
        assert len(msgs) == 7  # int(15 * 0.5)

    def test_rate_injection_volume(self):
        from repro.routing import rate_injection

        net = Hypercube(4)
        msgs = rate_injection(net, rate=0.1, duration=100, seed=3)
        # Expected ~ 16 nodes * 100 cycles * 0.1 = 160 messages.
        assert 100 < len(msgs) < 240
        assert all(s != d for s, d, _ in msgs)
        assert all(0 <= t < 100 for _, _, t in msgs)

    def test_rate_injection_seeded(self):
        from repro.routing import rate_injection

        net = Hypercube(3)
        a = rate_injection(net, rate=0.2, duration=20, seed=1)
        assert a == rate_injection(net, rate=0.2, duration=20, seed=1)

    def test_rate_injection_guards(self):
        from repro.routing import rate_injection

        with pytest.raises(ValueError):
            rate_injection(Hypercube(3), rate=0.0, duration=10)

    def test_timed_messages_in_simulator(self):
        from repro.routing import simulate

        net = Ring(8)
        # Second message starts late enough to miss the contention.
        res_t = simulate(net, [(0, 1), (0, 1, 100)])
        assert res_t.makespan == 102
        res_0 = simulate(net, [(0, 1), (0, 1)])
        assert res_0.makespan == 4

    def test_latency_excludes_queue_time_before_start(self):
        from repro.routing import simulate

        net = Ring(8)
        res = simulate(net, [(0, 1, 50)])
        assert res.max_latency == 2  # measured from its start cycle
