"""A1-A3: ablations of the design choices DESIGN.md calls out.

A1 -- node-size scalability (Section 3.2's "optimally scalable"):
     channel structure is invariant in node_side; area grows only
     through the cell pitch, so small sides leave the leading constant
     to the wiring.
A2 -- odd L: the scheme uses L-1 wiring layers; geometry equals the
     (L-1)-layer layout while volume pays for all L.
A3 -- node orders: the paper's orders vs. random orders for collinear
     layouts (the whole scheme rests on low-cutwidth orders).
"""

import random

from repro.collinear.engine import collinear_layout
from repro.collinear.formulas import hypercube_tracks, kary_tracks
from repro.collinear.orders import binary_order, mixed_radix_order
from repro.core import layout_hypercube, measure
from repro.topology import Hypercube, KAryNCube


def test_a1_node_size_scalability(benchmark, report):
    rows = []
    base_tracks = None
    for side in (5, 8, 16, 32):
        lay = layout_hypercube(6, node_side=side)
        if base_tracks is None:
            base_tracks = (lay.meta["row_tracks"], lay.meta["col_tracks"])
        assert (lay.meta["row_tracks"], lay.meta["col_tracks"]) == base_tracks
        m = measure(lay)
        rows.append([side, m.width, m.height, m.area, m.max_wire])
    report(
        "A1: 6-cube layout vs node side (channels invariant; pitch grows)",
        ["node side", "width", "height", "area", "max wire"],
        rows,
    )
    benchmark(layout_hypercube, 6, node_side=16)


def test_a2_odd_layer_geometry(benchmark, report):
    rows = []
    for L in (3, 5, 7, 9):
        odd = measure(layout_hypercube(8, layers=L, node_side="min"))
        even = measure(layout_hypercube(8, layers=L - 1, node_side="min"))
        assert odd.area == even.area
        assert odd.volume == even.area * L
        rows.append([
            L, odd.area, even.area, odd.volume, even.volume,
            f"{odd.volume / even.volume:.3f}",
        ])
    report(
        "A2: odd L equals L-1 in area; volume pays the idle layer "
        "(the paper's L^2-1 denominators)",
        ["L", "area (L)", "area (L-1)", "volume (L)", "volume (L-1)",
         "volume ratio"],
        rows,
    )
    benchmark(layout_hypercube, 6, layers=5)


def test_a4_exact_optimality_certificates(benchmark, report):
    """The paper's collinear counts vs the true (exact DP) cutwidth."""
    from repro.collinear.cutwidth import exact_cutwidth
    from repro.collinear.formulas import (
        complete_graph_tracks,
        mixed_radix_ghc_tracks,
    )
    from repro.topology import CompleteGraph, GeneralizedHypercube

    rows = []
    for name, net, paper in (
        ("K7", CompleteGraph(7), complete_graph_tracks(7)),
        ("4-cube", Hypercube(4), hypercube_tracks(4)),
        ("3-ary 2-cube", KAryNCube(3, 2), kary_tracks(3, 2)),
        ("4-ary 2-cube", KAryNCube(4, 2), kary_tracks(4, 2)),
        ("GHC(4,4)", GeneralizedHypercube((4, 4)),
         mixed_radix_ghc_tracks((4, 4))),
    ):
        opt = exact_cutwidth(net)
        rows.append([name, paper, opt,
                     "exactly optimal" if paper == opt else
                     f"paper +{paper - opt} (engine achieves {opt})"])
    report(
        "A4: paper collinear track counts vs exact cutwidth (DP)",
        ["network", "paper", "true optimum", "verdict"],
        rows,
    )
    benchmark(exact_cutwidth, Hypercube(4))


def test_a5_placement_ablation(benchmark, report):
    """Generic-grid fallback: index-order vs optimized placement.

    For the graphs without a product structure (the Section 4.3
    'similar strategies' families and ref. [17]'s shuffle-exchange),
    the swap-search placement cuts the dedicated-track count and hence
    the area substantially."""
    from repro.core import measure
    from repro.core.schemes import layout_generic_grid
    from repro.topology import DeBruijn, ShuffleExchange, StarGraph

    rows = []
    for net in (ShuffleExchange(5), DeBruijn(5), StarGraph(4)):
        plain_lay = layout_generic_grid(net, layers=4)
        opt_lay = layout_generic_grid(net, layers=4, optimize=True)
        plain, opt = measure(plain_lay), measure(opt_lay)
        rows.append([
            net.name,
            plain_lay.meta["extra_link_count"],
            opt_lay.meta["extra_link_count"],
            plain.area, opt.area,
            f"{plain.area / opt.area:.2f}",
        ])
        assert opt.area < plain.area
    report(
        "A5: generic-grid placement -- index order vs swap search",
        ["network", "extra links", "optimized", "area", "optimized",
         "area ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_generic_grid, args=(ShuffleExchange(4),),
        kwargs={"optimize": True}, rounds=1, iterations=1,
    )


def test_a6_two_sided_channels(benchmark, report):
    """Two-sided collinear channels: same height, ~15-25% shorter
    wires.  The paper keeps all tracks on one side because the 2-D
    scheme needs the other side for cluster strips; this quantifies
    what that choice costs at the collinear level."""
    from repro.collinear.two_sided import two_sided_collinear_layout
    from repro.core import layout_collinear_network, measure
    from repro.topology import CompleteGraph

    rows = []
    for net in (CompleteGraph(9), Hypercube(5), KAryNCube(5, 2)):
        one = measure(layout_collinear_network(net))
        two = measure(two_sided_collinear_layout(net))
        assert two.total_wire < one.total_wire
        rows.append([
            net.name, one.height, two.height,
            one.max_wire, two.max_wire,
            one.total_wire, two.total_wire,
            f"{one.total_wire / two.total_wire:.2f}",
        ])
    report(
        "A6: one-sided (paper) vs two-sided collinear channels",
        ["network", "H (1-side)", "H (2-side)", "max wire", "2-side",
         "total wire", "2-side", "wire ratio"],
        rows,
    )
    benchmark(two_sided_collinear_layout, CompleteGraph(9))


def test_a3_order_ablation(benchmark, report):
    rng = random.Random(2000)
    rows = []

    net = Hypercube(8)
    paper = collinear_layout(net.nodes, net.edges, binary_order(8))
    shuffled = list(net.nodes)
    rng.shuffle(shuffled)
    rand = collinear_layout(net.nodes, net.edges, shuffled)
    assert paper.num_tracks == hypercube_tracks(8) < rand.num_tracks
    rows.append([
        "8-cube", hypercube_tracks(8), paper.num_tracks, rand.num_tracks,
        f"{rand.num_tracks / paper.num_tracks:.2f}",
    ])

    knet = KAryNCube(4, 3)
    paper_k = collinear_layout(
        knet.nodes, knet.edges, mixed_radix_order([4] * 3)
    )
    shuffled = list(knet.nodes)
    rng.shuffle(shuffled)
    rand_k = collinear_layout(knet.nodes, knet.edges, shuffled)
    assert paper_k.num_tracks == kary_tracks(4, 3) < rand_k.num_tracks
    rows.append([
        "4-ary 3-cube", kary_tracks(4, 3), paper_k.num_tracks,
        rand_k.num_tracks,
        f"{rand_k.num_tracks / paper_k.num_tracks:.2f}",
    ])
    report(
        "A3: paper node orders vs random orders (collinear tracks)",
        ["network", "paper formula", "paper order", "random order",
         "blow-up"],
        rows,
    )
    benchmark(
        collinear_layout, net.nodes, net.edges, binary_order(8)
    )
