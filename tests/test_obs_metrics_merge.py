"""Merged histograms must keep percentile estimates sane.

Pins the ``lo > hi`` clamp bug: merging histograms with different
bucket bounds widens both sides to the union of edges, after which a
deciding bucket's ``(lo, hi]`` value range can lie entirely outside
the merged ``[min, max]``.  The naive two-sided clamp then *crossed*
the edges and interpolation ran backwards.  The property here is the
contract every caller assumes: any percentile of any merged histogram
lies within ``[min, max]`` and is monotone in ``q``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry

_values = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=40,
)

_bounds = st.lists(
    st.sampled_from([1, 2, 3, 5, 8, 16, 50, 64, 100, 512, 1000, 4096]),
    min_size=1,
    max_size=6,
    unique=True,
).map(lambda edges: tuple(sorted(edges)))


def _hist(bounds, values):
    h = Histogram(bounds)
    for v in values:
        h.observe(v)
    return h


class TestMergedPercentiles:
    @given(a=_values, b=_values, ba=_bounds, bb=_bounds)
    @settings(max_examples=200, deadline=None)
    def test_percentile_within_min_max_and_monotone(self, a, b, ba, bb):
        merged = _hist(ba, a)
        merged.merge_dict(_hist(bb, b).as_dict())
        assert merged.count == len(a) + len(b)
        lo, hi = min(a + b), max(a + b)
        assert merged.min == lo and merged.max == hi
        qs = [0.01, 0.25, 0.50, 0.90, 0.99, 1.0]
        ps = [merged.percentile(q) for q in qs]
        for p in ps:
            assert lo <= p <= hi
        assert ps == sorted(ps)

    @given(a=_values, ba=_bounds, bb=_bounds)
    @settings(max_examples=100, deadline=None)
    def test_registry_merge_matches_direct_merge(self, a, ba, bb):
        """merge() through a registry snapshot equals merge_dict."""
        reg = MetricsRegistry()
        h = reg.histogram("h", ba)
        for v in a:
            h.observe(v)
        other = MetricsRegistry()
        oh = other.histogram("h", bb)
        for v in a:
            oh.observe(v)
        reg.merge(other.snapshot())
        direct = _hist(ba, a)
        direct.merge_dict(_hist(bb, a).as_dict())
        for q in (0.5, 0.9, 0.99):
            assert reg.histogram("h").percentile(q) == direct.percentile(q)

    def test_regression_deciding_bucket_outside_min_max(self):
        """The concrete failing shape: after widening, the deciding
        bucket's edges both exceed max, the old clamp made lo > hi."""
        a = Histogram((100,))
        a.observe(5.0)  # le_100 bucket, min=max=5
        b = Histogram((2, 100))
        b.observe(1.0)  # le_2 bucket
        a.merge_dict(b.as_dict())
        # a's single observation now sits in the (2, 100] bucket while
        # max == 5: lo=2 < max but plain clamping used to cross.
        for q in (0.5, 0.75, 0.99, 1.0):
            p = a.percentile(q)
            assert 1.0 <= p <= 5.0

    def test_single_value_exact_after_merge(self):
        a = Histogram((8,))
        b = Histogram((2, 8))
        for _ in range(3):
            a.observe(4.0)
            b.observe(4.0)
        a.merge_dict(b.as_dict())
        assert a.percentile(0.5) == 4.0
        assert a.percentile(0.99) == 4.0

    def test_empty_histogram_percentile_is_zero(self):
        h = Histogram()
        assert h.percentile(0.5) == 0.0
        h.merge_dict(Histogram((2, 4)).as_dict())
        assert h.percentile(0.99) == 0.0
