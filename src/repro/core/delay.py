"""Wire-delay performance model.

The paper's introduction argues multilayer layouts buy "considerably
lower cost and/or higher performance": shorter maximum wires allow a
faster clock, and shorter source-destination wire totals cut message
latency.  This module turns the layout geometry into those performance
figures with a standard, deliberately simple delay model:

* **repeatered (linear) wires**: delay = ``alpha * length`` -- the
  regime of long on-chip wires with optimal repeater insertion;
* **unbuffered (RC) wires**: delay = ``beta * length^2`` -- worst-case
  distributed RC; quadratic, so halving the longest wire quarters its
  delay.

Derived figures:

* ``clock_period`` -- router latency plus the delay of the longest
  wire (synchronous operation is limited by the slowest link);
* ``message_latency`` -- cut-through/wormhole-style: per-hop router
  delay plus the wire delays along a minimum-wire-delay route;
* ``worst_case_latency`` -- the maximum message latency over
  source-destination pairs (sampled sources for large networks).

All quantities are in arbitrary units (alpha = 1 grid-unit delay);
benches report *ratios* across L, which is what the paper's claims
(3)-(4) speak to.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable

from repro.grid.layout import GridLayout

__all__ = ["DelayModel", "PerformanceReport", "performance"]


@dataclass(frozen=True, slots=True)
class DelayModel:
    """Technology parameters for the delay computation."""

    alpha: float = 1.0     # repeatered wire delay per grid unit
    beta: float = 0.0      # unbuffered RC factor (per unit^2)
    router_delay: float = 20.0  # fixed per-hop switch latency
    node_delay: float = 10.0    # compute/injection overhead per message

    def wire_delay(self, length: int) -> float:
        return self.alpha * length + self.beta * length * length


@dataclass(frozen=True, slots=True)
class PerformanceReport:
    """Performance snapshot of one layout under a delay model."""

    name: str
    layers: int
    clock_period: float
    max_wire_delay: float
    worst_latency: float
    avg_latency: float

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "L": self.layers,
            "clock_period": self.clock_period,
            "max_wire_delay": self.max_wire_delay,
            "worst_latency": self.worst_latency,
            "avg_latency": self.avg_latency,
        }


def _delay_adjacency(
    layout: GridLayout, model: DelayModel
) -> dict[Hashable, list[tuple[Hashable, float]]]:
    adj: dict[Hashable, dict[Hashable, float]] = {}
    for w in layout.wires:
        d = model.wire_delay(w.length) + model.router_delay
        for a, b in ((w.u, w.v), (w.v, w.u)):
            cur = adj.setdefault(a, {})
            if b not in cur or d < cur[b]:
                cur[b] = d
    return {u: list(nbrs.items()) for u, nbrs in adj.items()}


def _dijkstra_all(adj: dict, source: Hashable) -> dict[Hashable, float]:
    dist: dict[Hashable, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    tie = 0
    while heap:
        d, _, u = heapq.heappop(heap)
        if d > dist.get(u, float("inf")):
            continue
        for v, w in adj.get(u, ()):
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                tie += 1
                heapq.heappush(heap, (nd, tie, v))
    return dist


def performance(
    layout: GridLayout,
    model: DelayModel | None = None,
    *,
    max_sources: int = 32,
) -> PerformanceReport:
    """Compute the performance report for a routed layout.

    ``max_sources`` bounds the latency sweep (deterministic stride
    subsampling; exact when the network has that few nodes).
    """
    model = model or DelayModel()
    max_wire_delay = max(
        (model.wire_delay(w.length) for w in layout.wires), default=0.0
    )
    clock = model.router_delay + max_wire_delay

    adj = _delay_adjacency(layout, model)
    nodes = list(layout.placements)
    if len(nodes) > max_sources:
        step = -(-len(nodes) // max_sources)
        sources = nodes[::step]
    else:
        sources = nodes
    worst = 0.0
    total = 0.0
    count = 0
    for s in sources:
        dist = _dijkstra_all(adj, s)
        for v, d in dist.items():
            if v == s:
                continue
            worst = max(worst, d)
            total += d
            count += 1
    avg = total / count if count else 0.0
    return PerformanceReport(
        name=str(layout.meta.get("name", "layout")),
        layers=layout.layers,
        clock_period=clock,
        max_wire_delay=max_wire_delay,
        worst_latency=worst + model.node_delay,
        avg_latency=avg + model.node_delay,
    )
