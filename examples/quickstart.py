#!/usr/bin/env python
"""Quickstart: lay out a hypercube under the multilayer grid model.

Builds the 256-node hypercube layout of Section 5.1 for several layer
counts, validates each against the model's legality rules, and compares
the measured area/volume/wire length with the paper's leading terms
(16 N^2 / (9 L^2), etc.).

Run:  python examples/quickstart.py
"""

from repro import (
    Hypercube,
    layout_hypercube,
    measure,
    paper_prediction,
    validate_layout,
)
from repro.bench import print_table
from repro.grid.validate import check_topology


def main() -> None:
    n = 8
    net = Hypercube(n)
    print(f"Network: {net.name} with N={net.num_nodes} nodes, "
          f"{net.num_edges} links")

    rows = []
    for layers in (2, 4, 8, 16):
        layout = layout_hypercube(n, layers=layers, node_side="min")

        # Every layout is checked against the multilayer grid model:
        # per-layer edge-disjointness, via stacking, pin rules ... and
        # the routed wires must reproduce the hypercube exactly.
        validate_layout(layout)
        check_topology(layout, net.edges)

        m = measure(layout)
        p = paper_prediction("hypercube", n, layers=layers)
        rows.append([
            layers,
            m.area,
            round(p.area),
            f"{m.area / p.area:.2f}",
            m.volume,
            m.max_wire,
            round(p.max_wire),
        ])

    print_table(
        f"{n}-cube under L wiring layers (measured vs Section 5.1)",
        ["L", "area", "paper area", "area ratio", "volume", "max wire",
         "paper wire"],
        rows,
    )
    print(
        "\nThe measured/paper area ratio carries the node squares and the\n"
        "ceil() of track grouping -- both o(1) as N grows; the L^2 trend\n"
        "(claim 1 of the paper) is visible down the 'area' column."
    )


if __name__ == "__main__":
    main()
