"""Content-addressed on-disk cache for built layouts.

Every cacheable unit of work is *pure*: a canonical network structure
plus a scheme name, a layer budget, and scheme parameters fully
determine the layout the pipeline builds (all builders are
deterministic).  The cache therefore addresses entries by the SHA-256
of a canonical **key document**::

    {"schema": CACHE_SCHEMA_VERSION,      # cache entry format
     "format": grid.io.FORMAT_VERSION,    # layout serialization format
     "network": {"nodes": [...], "edges": [...]},   # structural, not
     "scheme": "auto",                    #   family-name based
     "layers": 4,
     "params": {...}}

so the same graph reached through different front doors (a family
sweep, the fuzzer's zoo draw, a CLI invocation) hits the same entry,
and bumping either version constant invalidates every stale entry at
once.

Entries are JSON files ``<root>/<k[:2]>/<k>.json`` holding the key
document (checked back on read -- a hash collision or a swapped file
is treated as a miss), the layout JSON payload with its own SHA-256
(bit corruption is detected, never trusted), and the layout's measured
metrics (so cache hits skip not only the build but also validation and
measurement).  Writes go through a temp file + ``os.replace`` so
concurrent sweep workers sharing one cache directory never observe a
torn entry; readers in ``readonly`` mode (the fuzz workers) never
write or delete anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.obs import logging as olog
from repro.grid.io import (
    FORMAT_VERSION,
    canonical_json,
    encode_label,
    layout_from_json,
)
from repro.grid.layout import GridLayout
from repro.topology.base import Network

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheEntry",
    "CacheStats",
    "LayoutCache",
    "cache_key",
    "network_fingerprint",
]

#: Bump to invalidate every existing cache entry (e.g. when a builder
#: change makes previously cached layouts non-reproducible).
CACHE_SCHEMA_VERSION = 1


def network_fingerprint(net: Network) -> dict:
    """A canonical document identifying ``net`` *as layout input*.

    Every builder is a deterministic function of the network's name
    (embedded in layout metadata), its node list, and its edge list --
    **in order** -- so the fingerprint preserves exactly that: node
    labels through the :mod:`repro.grid.io` codec, edges as emitted
    (parallel edges and endpoint order included).  Two constructions of
    the same labelled graph share an entry precisely when they would
    build byte-identical layouts.
    """
    return {
        "name": net.name,
        "nodes": [encode_label(v) for v in net.nodes],
        "edges": [
            [encode_label(u), encode_label(v)] for u, v in net.edges
        ],
    }


def cache_key(doc: dict) -> str:
    """SHA-256 of the canonical JSON form of a key document."""
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache handle.

    ``coalesced`` counts getters that neither hit nor built: they
    arrived while another thread was already building the same key
    (see :meth:`LayoutCache.get_or_build`) and simply waited for its
    result.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    writes: int = 0
    coalesced: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "coalesced": self.coalesced,
        }

    def merge(self, other: "CacheStats | dict") -> None:
        d = other.as_dict() if isinstance(other, CacheStats) else other
        self.hits += d.get("hits", 0)
        self.misses += d.get("misses", 0)
        self.corrupt += d.get("corrupt", 0)
        self.writes += d.get("writes", 0)
        self.coalesced += d.get("coalesced", 0)


@dataclass
class CacheEntry:
    """One retrieved entry: the layout JSON payload plus its metrics."""

    key: str
    layout_json: str
    metrics: dict | None = None

    def layout(self) -> GridLayout:
        """Deserialize the stored layout (hits that only need metrics
        never pay this)."""
        return layout_from_json(self.layout_json)


class _Flight:
    """One in-progress build: followers wait on ``done``."""

    __slots__ = ("done", "entry", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: CacheEntry | None = None
        self.error: BaseException | None = None


class LayoutCache:
    """Content-addressed layout store rooted at a directory.

    Parameters
    ----------
    root:
        Cache directory; created on first write.
    readonly:
        Never write, and never delete corrupt entries -- the mode fuzz
        workers share a sweep-populated cache in.
    """

    def __init__(self, root: str | os.PathLike, *, readonly: bool = False):
        self.root = Path(root)
        self.readonly = readonly
        self.stats = CacheStats()
        # Single-flight state: one _Flight per key currently being
        # built *by this handle*; guarded by _flight_lock.
        self._flight_lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}

    # -- keys -----------------------------------------------------------

    def key_for(
        self,
        network: Network,
        *,
        scheme: str,
        layers: int,
        params: dict | None = None,
    ) -> tuple[str, dict]:
        """``(hex key, key document)`` for one unit of layout work."""
        doc = {
            "schema": CACHE_SCHEMA_VERSION,
            "format": FORMAT_VERSION,
            "network": network_fingerprint(network),
            "scheme": scheme,
            "layers": layers,
            "params": dict(params or {}),
        }
        return cache_key(doc), doc

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read -----------------------------------------------------------

    def get(self, key: str, key_doc: dict | None = None) -> CacheEntry | None:
        """The entry under ``key``, or None on miss *or* corruption.

        A corrupt entry (unparseable JSON, payload hash mismatch, or --
        when ``key_doc`` is given -- a key document that does not match)
        is deleted (unless readonly) and reported as a miss, so the
        caller rebuilds instead of trusting it.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            self.stats.misses += 1
            obs.count("cache.misses")
            olog.debug("cache.miss", key=key[:16])
            return None
        entry = self._decode(raw, key, key_doc)
        if entry is None:
            self.stats.corrupt += 1
            self.stats.misses += 1
            obs.count("cache.corrupt")
            obs.count("cache.misses")
            olog.warning(
                "cache.corrupt",
                key=key[:16],
                readonly=self.readonly,
            )
            if not self.readonly:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing unlink
                    pass
            return None
        self.stats.hits += 1
        obs.count("cache.hits")
        olog.debug("cache.hit", key=key[:16])
        return entry

    @staticmethod
    def _decode(raw: str, key: str, key_doc: dict | None) -> CacheEntry | None:
        try:
            doc = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(doc, dict):
            return None
        layout_json = doc.get("layout")
        digest = doc.get("layout_sha256")
        if not isinstance(layout_json, str) or not isinstance(digest, str):
            return None
        if hashlib.sha256(layout_json.encode()).hexdigest() != digest:
            return None
        if key_doc is not None and doc.get("key") != key_doc:
            return None
        metrics = doc.get("metrics")
        if metrics is not None and not isinstance(metrics, dict):
            return None
        return CacheEntry(key=key, layout_json=layout_json, metrics=metrics)

    # -- write ----------------------------------------------------------

    def put(
        self,
        key: str,
        key_doc: dict,
        layout_json: str,
        metrics: dict | None = None,
    ) -> bool:
        """Store an entry atomically; no-op (False) in readonly mode."""
        if self.readonly:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": key_doc,
            "layout": layout_json,
            "layout_sha256": hashlib.sha256(layout_json.encode()).hexdigest(),
            "metrics": metrics,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        obs.count("cache.writes")
        olog.debug("cache.write", key=key[:16])
        return True

    # -- single-flight build --------------------------------------------

    def get_or_build(
        self,
        key: str,
        key_doc: dict,
        build,
        *,
        require_metrics: bool = True,
    ) -> tuple[CacheEntry, str]:
        """The entry under ``key``, building it at most once per handle.

        ``build()`` must return ``(layout_json, metrics)``.  Returns
        ``(entry, source)`` where ``source`` is ``"cache"`` (warm
        hit), ``"built"`` (this caller paid the build), or
        ``"coalesced"`` (another thread was already building the same
        key; this caller waited for its result without re-probing the
        disk, so neither the build work nor the ``cache.misses``
        count is doubled).

        Concurrency is **per handle**: two threads sharing one
        :class:`LayoutCache` coalesce; separate processes (or separate
        handles) still race benignly through the atomic ``put``.  A
        build that raises releases the flight and propagates to every
        waiter, so a later request retries cleanly.
        """
        while True:
            with self._flight_lock:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.done.wait()
                if flight.error is not None:
                    raise flight.error
                if flight.entry is None:
                    # The leader found a usable warm entry *after* we
                    # enqueued (rare); loop and take the fast path.
                    continue
                self.stats.coalesced += 1
                obs.count("cache.coalesced")
                olog.debug("cache.coalesced", key=key[:16])
                return flight.entry, "coalesced"
            try:
                entry = self.get(key, key_doc)
                if entry is not None and (
                    not require_metrics or entry.metrics is not None
                ):
                    flight.entry = entry
                    return entry, "cache"
                olog.info("cache.build", key=key[:16])
                with obs.span("cache.build", key=key[:16]):
                    layout_json, metrics = build()
                self.put(key, key_doc, layout_json, metrics)
                entry = CacheEntry(
                    key=key, layout_json=layout_json, metrics=metrics
                )
                flight.entry = entry
                return entry, "built"
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._flight_lock:
                    self._inflight.pop(key, None)
                flight.done.set()
