"""The orthogonal multilayer layout builder (Sections 2.3-2.4).

Given a :class:`~repro.core.spec.LayoutSpec` -- an R x C grid of cells,
row/column/extra links, and a layer budget L -- this module produces a
fully-routed :class:`~repro.grid.layout.GridLayout` that passes the
multilayer grid model validator.

Geometry (y grows downward)::

      <- CW_0 -><-W_0-><- CW_1 -><-W_1-> ...
      +--------+      +--------+
      | row-0 horizontal channel (H_0 grid lines)  |
      +--------+      +--------+
      | cell   | col  | cell   | col
      | (0,0)  | chan | (0,1)  | chan
      +--------+  0   +--------+  1
      | row-1 horizontal channel ...

* Row links route in the channel *above* their row: a vertical stub up
  from the source pin, a horizontal run on the assigned track, a stub
  down to the target pin.
* Column links route in the channel *right* of their column, entering
  plain nodes through right-side pins and cluster blocks through
  dedicated *distribution tracks* in the block's fan-in region.
* Extra links (Section 5.3) get one dedicated horizontal track in the
  source row's channel and one dedicated vertical track in the target
  column's channel.

Layer discipline: horizontal segments on odd layers, vertical segments
on even layers; a channel's tracks are split into ``G = floor(L/2)``
groups, group g using layers (2g+1, 2g+2) -- the multilayer transform
of Section 2.4.  Legality is structural: horizontal runs on one
(layer, line) come from one packed track; vertical stubs sit on
per-node-unique pin abscissae; and the pin/distribution-track ordering
rule (wires arriving from the smaller coordinate get smaller pins)
makes track sharing by touching intervals safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro import obs
from repro.core.multilayer import LayerGroups
from repro.core.pins import PinAllocator
from repro.core.spec import BlockCell, LayoutSpec, LinkSpec, NodeCell
from repro.grid.geometry import Rect, Segment
from repro.grid.layout import GridLayout
from repro.grid.tracks import Interval, pack_intervals
from repro.grid.wire import Wire

__all__ = ["build_orthogonal_layout"]

Node = Hashable
CellPos = tuple[int, int]


# ---------------------------------------------------------------------------
# Internal bookkeeping


@dataclass(slots=True)
class _BlockInfo:
    """Derived data for one block cell."""

    cell: BlockCell
    member_index: dict[Node, int]
    width: int
    strip_tracks: int  # logical intra-cluster tracks
    strip_extent: int  # physical grid lines below the node row
    dist_slots: dict[Hashable, int] = field(default_factory=dict)  # token -> y offset
    strip_assignment: dict[int, int] = field(default_factory=dict)

    @property
    def dist_extent(self) -> int:
        return len(self.dist_slots)

    @property
    def height(self) -> int:
        # fan-in region + node row + strip-track region
        return self.dist_extent + self.cell.node_side + self.strip_extent


@dataclass(slots=True)
class _Geometry:
    """Absolute coordinates of the grid skeleton."""

    cell_x: list[int]  # left edge of cell column j
    chan_x: list[int]  # left edge of vertical channel j
    chan_y: list[int]  # top edge of horizontal channel i (above row i)
    cell_y: list[int]  # top edge of cell row i
    col_widths: list[int]
    row_heights: list[int]


def build_orthogonal_layout(spec: LayoutSpec) -> GridLayout:
    """Run the full orthogonal multilayer layout scheme on ``spec``."""
    spec.validate()
    builder = _Builder(spec)
    return builder.build()


class _Builder:
    def __init__(self, spec: LayoutSpec):
        self.spec = spec
        self.G = max(spec.layers // 2, 1)
        self.pins = PinAllocator()
        self.blocks: dict[CellPos, _BlockInfo] = {}
        # Per-link routing choices, filled in phase order.
        self.row_track: dict[int, int] = {}  # row-link index -> track
        self.col_track: dict[int, int] = {}
        # Extra links: (offset, group) per channel; both channels of a
        # link share the group so its via spans one layer pair only.
        self.extra_group: dict[int, int] = {}
        self.extra_h_offset: dict[int, int] = {}
        self.extra_v_offset: dict[int, int] = {}
        self.row_packed: list[int] = []
        self.col_packed: list[int] = []
        self.row_tracks_total: list[int] = []
        self.col_tracks_total: list[int] = []
        self.row_extents: list[int] = []
        self.col_extents: list[int] = []

    # -- top level -------------------------------------------------------

    def build(self) -> GridLayout:
        with obs.span(
            "build", name=self.spec.name, layers=self.spec.layers,
            rows=self.spec.rows, cols=self.spec.cols,
        ) as sp:
            layout = self._build_phases(sp)
        obs.count("builder.layouts_built")
        obs.count("builder.wires_routed", len(layout.wires))
        obs.count(
            "builder.tracks_packed",
            sum(self.row_tracks_total) + sum(self.col_tracks_total),
        )
        return layout

    def _build_phases(self, sp) -> GridLayout:
        with obs.span("prepare_blocks"):
            self._prepare_blocks()
            self._allocate_dist_slots()
        with obs.span("request_pins"):
            self._request_pins()
            self.pins.freeze()
        with obs.span("pack_channels"):
            self._pack_channels()
        with obs.span("compute_geometry"):
            geo = self._compute_geometry()
        layout = GridLayout(layers=self.spec.layers)
        with obs.span("place_nodes"):
            self._place_nodes(geo, layout)
        with obs.span("route_row_links"):
            self._route_row_links(geo, layout)
        with obs.span("route_col_links"):
            self._route_col_links(geo, layout)
        with obs.span("route_extra_links"):
            self._route_extra_links(geo, layout)
        with obs.span("route_strips"):
            self._route_strips(geo, layout)
        sp.add("wires", len(layout.wires))
        layout.meta.update(
            {
                "scheme": "orthogonal-multilayer",
                "name": self.spec.name,
                "rows": self.spec.rows,
                "cols": self.spec.cols,
                "layer_groups": self.G,
                "row_tracks": list(self.row_tracks_total),
                "col_tracks": list(self.col_tracks_total),
                "row_channel_extents": list(self.row_extents),
                "col_channel_extents": list(self.col_extents),
                "col_widths": geo.col_widths,
                "row_heights": geo.row_heights,
            }
        )
        return layout

    # -- phase 1: blocks ---------------------------------------------------

    def _prepare_blocks(self) -> None:
        for pos, cell in self.spec.cells.items():
            if not isinstance(cell, BlockCell):
                continue
            member_index = {v: m for m, v in enumerate(cell.nodes)}
            width = len(cell.nodes) * cell.node_side
            self.blocks[pos] = _BlockInfo(
                cell=cell,
                member_index=member_index,
                width=width,
                strip_tracks=0,
                strip_extent=0,
            )

    def _allocate_dist_slots(self) -> None:
        """Give each side-entering link end a distribution track.

        Slots are ordered so links arriving from above precede links
        departing below; this is what lets two such links share a
        vertical channel track that touches at this block's row.
        """
        requests: dict[CellPos, list[tuple[tuple, Hashable]]] = {}

        def ask(pos: CellPos, other_row: int, token: Hashable) -> None:
            i = pos[0]
            direction = 0 if other_row < i else 1
            requests.setdefault(pos, []).append(
                ((direction, other_row, str(token)), token)
            )

        for idx, link in enumerate(self.spec.col_links):
            for end, other in (("u", link.v_cell), ("v", link.u_cell)):
                pos = link.u_cell if end == "u" else link.v_cell
                if pos in self.blocks:
                    ask(pos, other[0], ("col", idx, end))
        for idx, link in enumerate(self.spec.extra_links):
            # Only the v end of an extra link enters from the side; the
            # vertical run approaches from the source row's channel.
            if link.v_cell in self.blocks:
                ask(link.v_cell, link.u_cell[0], ("extra", idx, "v"))

        for pos, reqs in requests.items():
            reqs.sort(key=lambda r: r[0])
            info = self.blocks[pos]
            for slot, (_, token) in enumerate(reqs):
                info.dist_slots[token] = slot

    # -- phase 2: pins -----------------------------------------------------

    def _request_pins(self) -> None:
        # Capacities.
        for pos, cell in self.spec.cells.items():
            if isinstance(cell, NodeCell):
                for side in ("top", "right", "bottom", "left"):
                    self.pins.set_capacity(cell.node, side, cell.side)
            else:
                for v in cell.nodes:
                    for side in ("top", "right", "bottom", "left"):
                        self.pins.set_capacity(v, side, cell.node_side)

        # Row links: both ends attach at top pins; ordering key places
        # wires arriving from the left before wires departing right.
        for idx, link in enumerate(self.spec.row_links):
            self._request_top_pin(link, idx, "row")

        # Column links: plain nodes use right-side pins (ordered by the
        # other end's row); block members use a top pin for the climb to
        # the distribution track (no ordering constraint).
        for idx, link in enumerate(self.spec.col_links):
            for end in ("u", "v"):
                pos, node, other = self._end(link, end)
                token = ("col", idx, end)
                if pos in self.blocks:
                    self.pins.request(node, "top", (2, 0, str(token)), token)
                else:
                    direction = 0 if other[0] < pos[0] else 1
                    self.pins.request(
                        node, "right", (direction, other[0], str(token)), token
                    )

        # Extra links: source uses a top pin (ordered like a row wire
        # toward the target column's channel); target enters from the
        # right side (plain node) or via a distribution track (block).
        for idx, link in enumerate(self.spec.extra_links):
            u_pos, u_node = link.u_cell, link.u_node
            token_u = ("extra", idx, "u")
            self_d = 2 * u_pos[1]
            other_d = 2 * link.v_cell[1] + 1  # the target column's channel
            direction = 0 if other_d < self_d else 1
            self.pins.request(
                u_node, "top", (direction, other_d, str(token_u)), token_u
            )
            token_v = ("extra", idx, "v")
            v_pos, v_node = link.v_cell, link.v_node
            if v_pos in self.blocks:
                self.pins.request(v_node, "top", (2, 0, str(token_v)), token_v)
            else:
                direction = 0 if link.u_cell[0] < v_pos[0] else 1
                self.pins.request(
                    v_node, "right", (direction, link.u_cell[0], str(token_v)),
                    token_v,
                )

        # Intra-block strip wiring: bottom pins, ordered left-to-right.
        for pos, info in self.blocks.items():
            for eidx, (u, v) in enumerate(info.cell.edges):
                mu, mv = info.member_index[u], info.member_index[v]
                for node, mine, other, end in (
                    (u, mu, mv, "u"),
                    (v, mv, mu, "v"),
                ):
                    token = ("strip", pos, eidx, end)
                    direction = 0 if other < mine else 1
                    self.pins.request(
                        node, "bottom", (direction, other, str(token)), token
                    )

    def _request_top_pin(self, link: LinkSpec, idx: int, kind: str) -> None:
        for end in ("u", "v"):
            pos, node, other = self._end(link, end)
            token = (kind, idx, end)
            direction = 0 if other[1] < pos[1] else 1
            self.pins.request(
                node, "top", (direction, other[1], str(token)), token
            )

    def _end(self, link: LinkSpec, end: str) -> tuple[CellPos, Node, CellPos]:
        if end == "u":
            return link.u_cell, link.u_node, link.v_cell
        return link.v_cell, link.v_node, link.u_cell

    # -- phase 3: channel packing ------------------------------------------

    def _cell_rank(self, pos: CellPos, node: Node, token: Hashable, axis: str) -> int:
        """The pin's offset within its cell along the channel axis.

        For row channels (axis 'x') this is the top-pin abscissa offset;
        for column channels (axis 'y') the right-pin / distribution-track
        ordinate offset.  Ranks refine the doubled cell coordinate so
        interval packing reasons about true geometric extents.
        """
        cell = self.spec.cells[pos]
        if axis == "x":
            off = self.pins.offset(node, "top", token)
            if isinstance(cell, BlockCell):
                info = self.blocks[pos]
                return info.member_index[node] * cell.node_side + off
            return off
        # axis == 'y'
        if pos in self.blocks:
            return self.blocks[pos].dist_slots[token]
        return self.pins.offset(node, "right", token)

    def _pack_channels(self) -> None:
        spec = self.spec
        # Row channels.
        per_row: dict[int, list[tuple[int, Interval]]] = {}
        for idx, link in enumerate(spec.row_links):
            i = link.u_cell[0]
            ends = []
            for end in ("u", "v"):
                pos, node, _ = self._end(link, end)
                rank = self._cell_rank(pos, node, ("row", idx, end), "x")
                ends.append((2 * pos[1], rank))
            lo, hi = sorted(ends)
            per_row.setdefault(i, []).append((idx, Interval(lo, hi)))
        G = self.G
        extras_per_row: dict[int, list[int]] = {}
        for idx, link in enumerate(spec.extra_links):
            extras_per_row.setdefault(link.u_cell[0], []).append(idx)
            self.extra_group[idx] = idx % G

        self.row_packed = [0] * spec.rows
        self.row_tracks_total = [0] * spec.rows
        self.row_extents = [0] * spec.rows
        for i in range(spec.rows):
            items = per_row.get(i, [])
            assignment, count = pack_intervals([iv for _, iv in items])
            for local, (idx, _) in enumerate(items):
                self.row_track[idx] = assignment[local]
            extras = extras_per_row.get(i, [])
            cap = LayerGroups(count, spec.layers).per_group
            per_group: dict[int, int] = {}
            for idx in extras:
                g = self.extra_group[idx]
                self.extra_h_offset[idx] = cap + per_group.get(g, 0)
                per_group[g] = per_group.get(g, 0) + 1
            self.row_packed[i] = count
            self.row_tracks_total[i] = count + len(extras)
            self.row_extents[i] = cap + max(per_group.values(), default=0)

        # Column channels.
        per_col: dict[int, list[tuple[int, Interval]]] = {}
        for idx, link in enumerate(spec.col_links):
            j = link.u_cell[1]
            ends = []
            for end in ("u", "v"):
                pos, node, _ = self._end(link, end)
                rank = self._cell_rank(pos, node, ("col", idx, end), "y")
                ends.append((2 * pos[0], rank))
            lo, hi = sorted(ends)
            per_col.setdefault(j, []).append((idx, Interval(lo, hi)))
        extras_per_col: dict[int, list[int]] = {}
        for idx, link in enumerate(spec.extra_links):
            extras_per_col.setdefault(link.v_cell[1], []).append(idx)

        self.col_packed = [0] * spec.cols
        self.col_tracks_total = [0] * spec.cols
        self.col_extents = [0] * spec.cols
        for j in range(spec.cols):
            items = per_col.get(j, [])
            assignment, count = pack_intervals([iv for _, iv in items])
            for local, (idx, _) in enumerate(items):
                self.col_track[idx] = assignment[local]
            extras = extras_per_col.get(j, [])
            cap = LayerGroups(count, spec.layers).per_group
            per_group: dict[int, int] = {}
            for idx in extras:
                g = self.extra_group[idx]
                self.extra_v_offset[idx] = cap + per_group.get(g, 0)
                per_group[g] = per_group.get(g, 0) + 1
            self.col_packed[j] = count
            self.col_tracks_total[j] = count + len(extras)
            self.col_extents[j] = cap + max(per_group.values(), default=0)

        # Intra-block strips.
        for pos, info in self.blocks.items():
            intervals = []
            for eidx, (u, v) in enumerate(info.cell.edges):
                ends = []
                for node, end in ((u, "u"), (v, "v")):
                    m = info.member_index[node]
                    off = self.pins.offset(
                        node, "bottom", ("strip", pos, eidx, end)
                    )
                    ends.append((m, off))
                lo, hi = sorted(ends)
                intervals.append(Interval(lo, hi))
            assignment, count = pack_intervals(intervals)
            info.strip_tracks = count
            # One grid line of clearance below the deepest strip track so
            # it can never coincide with the next row channel's top track.
            extent = LayerGroups(count, self.spec.layers).physical_extent()
            info.strip_extent = extent + 1 if count else 0
            info.strip_assignment = assignment

    # -- phase 4: geometry ---------------------------------------------------

    def _cell_width(self, pos: CellPos) -> int:
        cell = self.spec.cells.get(pos)
        if cell is None:
            return 0
        if isinstance(cell, NodeCell):
            return cell.side
        return self.blocks[pos].width

    def _cell_height(self, pos: CellPos) -> int:
        cell = self.spec.cells.get(pos)
        if cell is None:
            return 0
        if isinstance(cell, NodeCell):
            return cell.side
        return self.blocks[pos].height

    def _compute_geometry(self) -> _Geometry:
        spec = self.spec
        col_widths = [
            max(
                (self._cell_width((i, j)) for i in range(spec.rows)),
                default=0,
            )
            for j in range(spec.cols)
        ]
        row_heights = [
            max(
                (self._cell_height((i, j)) for j in range(spec.cols)),
                default=0,
            )
            for i in range(spec.rows)
        ]
        cell_x, chan_x = [], []
        x = 0
        for j in range(spec.cols):
            cell_x.append(x)
            x += col_widths[j]
            chan_x.append(x)
            x += self.col_extents[j]
        chan_y, cell_y = [], []
        y = 0
        for i in range(spec.rows):
            chan_y.append(y)
            y += self.row_extents[i]
            cell_y.append(y)
            y += row_heights[i]
        return _Geometry(
            cell_x=cell_x,
            chan_x=chan_x,
            chan_y=chan_y,
            cell_y=cell_y,
            col_widths=col_widths,
            row_heights=row_heights,
        )

    # -- phase 5: placement & routing ----------------------------------------

    def _place_nodes(self, geo: _Geometry, layout: GridLayout) -> None:
        for pos, cell in self.spec.cells.items():
            i, j = pos
            x0, y0 = geo.cell_x[j], geo.cell_y[i]
            if isinstance(cell, NodeCell):
                layout.place(cell.node, Rect(x0, y0, cell.side, cell.side))
            else:
                info = self.blocks[pos]
                s = cell.node_side
                ny = y0 + info.dist_extent
                for m, v in enumerate(cell.nodes):
                    layout.place(v, Rect(x0 + m * s, ny, s, s))

    # pin coordinate helpers ---------------------------------------------

    def _top_pin_x(self, pos: CellPos, node: Node, token: Hashable, geo: _Geometry) -> int:
        j = pos[1]
        return geo.cell_x[j] + self._cell_rank(pos, node, token, "x")

    def _node_top_y(self, pos: CellPos, geo: _Geometry) -> int:
        i = pos[0]
        if pos in self.blocks:
            return geo.cell_y[i] + self.blocks[pos].dist_extent
        return geo.cell_y[i]

    def _right_pin(self, pos: CellPos, node: Node, token: Hashable, geo: _Geometry) -> tuple[int, int]:
        """(x, y) of a plain node's right-side pin."""
        i, j = pos
        cell = self.spec.cells[pos]
        assert isinstance(cell, NodeCell)
        y = geo.cell_y[i] + self.pins.offset(node, "right", token)
        x = geo.cell_x[j] + cell.side
        return x, y

    def _dist_y(self, pos: CellPos, token: Hashable, geo: _Geometry) -> int:
        return geo.cell_y[pos[0]] + self.blocks[pos].dist_slots[token]

    # routing ---------------------------------------------------------------

    def _route_row_links(self, geo: _Geometry, layout: GridLayout) -> None:
        spec = self.spec
        for idx, link in enumerate(spec.row_links):
            i = link.u_cell[0]
            groups = LayerGroups(self.row_packed[i], spec.layers)
            slot = groups.slot(self.row_track[idx])
            y_t = geo.chan_y[i] + slot.offset
            xu = self._top_pin_x(link.u_cell, link.u_node, ("row", idx, "u"), geo)
            xv = self._top_pin_x(link.v_cell, link.v_node, ("row", idx, "v"), geo)
            yu = self._node_top_y(link.u_cell, geo)
            yv = self._node_top_y(link.v_cell, geo)
            segs = [
                Segment.make(xu, yu, xu, y_t, slot.v_layer),
                Segment.make(xu, y_t, xv, y_t, slot.h_layer),
                Segment.make(xv, y_t, xv, yv, slot.v_layer),
            ]
            layout.add_wire(
                Wire(link.u_node, link.v_node, segs, edge_key=link.edge_key)
            )

    def _route_col_links(self, geo: _Geometry, layout: GridLayout) -> None:
        spec = self.spec
        for idx, link in enumerate(spec.col_links):
            j = link.u_cell[1]
            groups = LayerGroups(self.col_packed[j], spec.layers)
            slot = groups.slot(self.col_track[idx])
            x_t = geo.chan_x[j] + slot.offset
            head, (xu, yu) = self._col_end_path(
                link, "u", idx, x_t, slot.h_layer, geo
            )
            tail, (xv, yv) = self._col_end_path(
                link, "v", idx, x_t, slot.h_layer, geo
            )
            run = Segment.make(x_t, yu, x_t, yv, slot.v_layer)
            segs = head + [run] + [s for s in reversed(tail)]
            layout.add_wire(
                Wire(link.u_node, link.v_node, segs, edge_key=link.edge_key)
            )

    def _col_end_path(
        self,
        link: LinkSpec,
        end: str,
        idx: int,
        x_t: int,
        h_layer: int,
        geo: _Geometry,
    ) -> tuple[list[Segment], tuple[int, int]]:
        """Segments from this end's pin toward the channel, plus the
        (x, y) where the vertical channel run meets them."""
        pos, node, _ = self._end(link, end)
        token = ("col", idx, end)
        if pos in self.blocks:
            # climb from the member's top pin to the distribution track,
            # then ride it to the channel.
            px = self._top_pin_x(pos, node, token, geo)
            py = self._node_top_y(pos, geo)
            dy = self._dist_y(pos, token, geo)
            segs = [
                Segment.make(px, py, px, dy, h_layer + 1),  # climb
                Segment.make(px, dy, x_t, dy, h_layer),
            ]
            return segs, (x_t, dy)
        x, y = self._right_pin(pos, node, token, geo)
        segs = []
        if x != x_t:
            segs.append(Segment.make(x, y, x_t, y, h_layer))
        return segs, (x_t, y)

    def _route_extra_links(self, geo: _Geometry, layout: GridLayout) -> None:
        spec = self.spec
        for idx, link in enumerate(spec.extra_links):
            i_u = link.u_cell[0]
            j_v = link.v_cell[1]
            g = self.extra_group[idx]
            h_layer, v_layer = 2 * g + 1, 2 * g + 2
            y_h = geo.chan_y[i_u] + self.extra_h_offset[idx]
            x_v = geo.chan_x[j_v] + self.extra_v_offset[idx]

            xu = self._top_pin_x(link.u_cell, link.u_node, ("extra", idx, "u"), geo)
            yu = self._node_top_y(link.u_cell, geo)
            segs = [
                Segment.make(xu, yu, xu, y_h, v_layer),
                Segment.make(xu, y_h, x_v, y_h, h_layer),
            ]
            # Target entry.
            token_v = ("extra", idx, "v")
            if link.v_cell in self.blocks:
                px = self._top_pin_x(link.v_cell, link.v_node, token_v, geo)
                py = self._node_top_y(link.v_cell, geo)
                dy = self._dist_y(link.v_cell, token_v, geo)
                segs.append(Segment.make(x_v, y_h, x_v, dy, v_layer))
                segs.append(Segment.make(x_v, dy, px, dy, h_layer))
                segs.append(Segment.make(px, dy, px, py, v_layer))
            else:
                x, y = self._right_pin(link.v_cell, link.v_node, token_v, geo)
                segs.append(Segment.make(x_v, y_h, x_v, y, v_layer))
                if x != x_v:
                    segs.append(Segment.make(x_v, y, x, y, h_layer))
            layout.add_wire(
                Wire(link.u_node, link.v_node, segs, edge_key=link.edge_key)
            )

    def _route_strips(self, geo: _Geometry, layout: GridLayout) -> None:
        for pos, info in self.blocks.items():
            cell = info.cell
            assignment = info.strip_assignment
            groups = LayerGroups(max(info.strip_tracks, 1), self.spec.layers)
            node_bottom = (
                geo.cell_y[pos[0]] + info.dist_extent + cell.node_side
            )
            x0 = geo.cell_x[pos[1]]
            for eidx, (u, v) in enumerate(cell.edges):
                slot = groups.slot(assignment[eidx])
                y_t = node_bottom + 1 + slot.offset
                xs = []
                for node, end in ((u, "u"), (v, "v")):
                    m = info.member_index[node]
                    off = self.pins.offset(node, "bottom", ("strip", pos, eidx, end))
                    xs.append(x0 + m * cell.node_side + off)
                xu, xv = xs
                segs = [
                    Segment.make(xu, node_bottom, xu, y_t, slot.v_layer),
                    Segment.make(xu, y_t, xv, y_t, slot.h_layer),
                    Segment.make(xv, y_t, xv, node_bottom, slot.v_layer),
                ]
                layout.add_wire(Wire(u, v, segs, edge_key=("strip", eidx)))
