"""Cluster partitions and quotient multigraphs (Section 3.2).

A *PN cluster* is a network obtained by replacing each node of a
product network with a cluster; equivalently, a network together with a
partition whose quotient is a product network.  The layout schemes only
need two things from a partition: the quotient multigraph (supernodes +
parallel inter-cluster links, each remembering its endpoint nodes) and
the intra-cluster subgraphs.  :func:`quotient` computes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.topology.base import Network, Node

__all__ = ["Partition", "Quotient", "quotient"]


@dataclass(slots=True)
class Partition:
    """A map from network nodes to cluster labels."""

    mapping: dict[Node, Hashable]
    name: str = "partition"

    def cluster_of(self, v: Node) -> Hashable:
        return self.mapping[v]

    def clusters(self) -> list[Hashable]:
        seen: dict[Hashable, None] = {}
        for c in self.mapping.values():
            seen.setdefault(c, None)
        return list(seen)

    def members(self) -> dict[Hashable, list[Node]]:
        out: dict[Hashable, list[Node]] = {}
        for v, c in self.mapping.items():
            out.setdefault(c, []).append(v)
        return out


@dataclass(slots=True)
class Quotient:
    """The quotient multigraph of a partition.

    Attributes
    ----------
    clusters:
        Cluster labels, in first-seen order.
    inter_edges:
        One entry per inter-cluster link of the original network:
        ``(cluster_u, cluster_v, u, v)`` with the original endpoints
        kept so the layout can attach the link to real nodes.
    intra_edges:
        Original edges internal to each cluster.
    members:
        Cluster label -> member nodes.
    """

    clusters: list[Hashable]
    inter_edges: list[tuple[Hashable, Hashable, Node, Node]]
    intra_edges: dict[Hashable, list[tuple[Node, Node]]]
    members: dict[Hashable, list[Node]] = field(default_factory=dict)

    def multiplicity(self) -> dict[tuple[Hashable, Hashable], int]:
        """Parallel-link count per unordered cluster pair."""
        out: dict[tuple, int] = {}
        for cu, cv, _, _ in self.inter_edges:
            key = _norm(cu, cv)
            out[key] = out.get(key, 0) + 1
        return out

    def simple_edges(self) -> list[tuple[Hashable, Hashable]]:
        """Each adjacent cluster pair once (the underlying simple graph)."""
        return list(self.multiplicity())


def _norm(a, b):
    ka, kb = (str(type(a)), repr(a)), (str(type(b)), repr(b))
    return (a, b) if ka <= kb else (b, a)


def quotient(network: Network, partition: Partition) -> Quotient:
    """Compute the quotient multigraph of ``network`` under ``partition``."""
    mapping = partition.mapping
    missing = [v for v in network.nodes if v not in mapping]
    if missing:
        raise ValueError(
            f"partition does not cover nodes, e.g. {missing[:3]!r}"
        )
    clusters: dict[Hashable, None] = {}
    for v in network.nodes:
        clusters.setdefault(mapping[v], None)
    inter: list[tuple] = []
    intra: dict[Hashable, list[tuple[Node, Node]]] = {c: [] for c in clusters}
    for u, v in network.edges:
        cu, cv = mapping[u], mapping[v]
        if cu == cv:
            intra[cu].append((u, v))
        else:
            inter.append((cu, cv, u, v))
    return Quotient(
        clusters=list(clusters),
        inter_edges=inter,
        intra_edges=intra,
        members=partition.members(),
    )
