"""Cycle-driven store-and-forward network simulator.

Each link (directed edge) carries one message at a time and takes an
integer delay per traversal -- by default the layout-derived wire delay
of :func:`repro.routing.paths.layout_link_delays`, which is how the
paper's geometry becomes performance.  Simulation setup precomputes
every link delay in one vectorized pass over the layout's
:class:`~repro.grid.table.WireTable`, so even a large layout's delay
map costs one array ceil, not a walk of its wire objects.  Messages
follow precomputed
routes; contended links serve waiters in deterministic FIFO order, so
simulations are exactly reproducible.

This per-packet loop is the **oracle**: the batched engine in
:mod:`repro.routing.engine` reproduces its results field-for-field and
is differential-tested against it (``tests/test_engine_parity.py``,
the ``traffic`` fuzz stage).  The setup and result-finalization
helpers here are shared by both drivers so they cannot drift: link
delays, routes, per-hop costs, and the latency histogram all come from
one code path.

Latency summaries flow through a :class:`repro.obs.metrics.Histogram`
(``LATENCY_BOUNDS`` power-of-two edges): ``avg_latency`` is the
histogram mean and the percentile fields interpolate its buckets, so
``repro watch``, run reports, and the Prometheus exporter all agree
with the numbers the engines print.

The results quantify the introduction's claim chain: shorter wires
(multilayer layout) -> smaller link delays -> lower message latency and
makespan for the same traffic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro import obs
from repro.grid.layout import GridLayout
from repro.obs.metrics import Histogram
from repro.routing.paths import RoutingTable, layout_link_delays
from repro.topology.base import Network

__all__ = ["SimulationResult", "simulate", "LATENCY_BOUNDS"]

Node = Hashable
Message = tuple[Node, Node]

#: Bucket edges for the shared latency histogram: powers of two up to
#: 2^20 cycles, wide enough that paper-scale simulations never spill
#: into the overflow bucket (which would coarsen percentiles).
LATENCY_BOUNDS = tuple(2 ** k for k in range(21))


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one traffic run.

    ``link_utilization`` maps each used directed link to the fraction
    of the makespan it was busy; ``queue_depth_hist`` counts, for every
    wait event (a message finding its next link busy), how many
    messages were then queued on that link -- ``{depth: events}``.
    ``latency_hist`` is the :meth:`repro.obs.metrics.Histogram.as_dict`
    snapshot of per-message latencies; ``avg_latency`` is its mean and
    the ``latency_p*`` properties interpolate its buckets, so every
    reporting surface (CLI tables, run reports, Prometheus) quotes the
    same distribution.  All of it is also published to the
    :mod:`repro.obs` metrics registry when observability is enabled.
    """

    makespan: int
    avg_latency: float
    max_latency: int
    messages: int
    max_link_load: int
    busiest_link: tuple[Node, Node] | None
    link_utilization: dict[tuple[Node, Node], float] = field(
        default_factory=dict
    )
    queue_depth_hist: dict[int, int] = field(default_factory=dict)
    latency_hist: dict = field(default_factory=dict)

    @property
    def max_utilization(self) -> float:
        return max(self.link_utilization.values(), default=0.0)

    @property
    def avg_utilization(self) -> float:
        u = self.link_utilization
        return sum(u.values()) / len(u) if u else 0.0

    def latency_percentile(self, q: float) -> float:
        """Bucket-interpolated latency quantile (``0 < q <= 1``)."""
        if not self.latency_hist:
            return 0.0
        return Histogram.from_dict(self.latency_hist).percentile(q)

    @property
    def latency_p50(self) -> float:
        return self.latency_percentile(0.50)

    @property
    def latency_p90(self) -> float:
        return self.latency_percentile(0.90)

    @property
    def latency_p99(self) -> float:
        return self.latency_percentile(0.99)

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "avg_latency": self.avg_latency,
            "max_latency": self.max_latency,
            "latency_p50": self.latency_p50,
            "latency_p90": self.latency_p90,
            "latency_p99": self.latency_p99,
            "messages": self.messages,
            "max_link_load": self.max_link_load,
            "busiest_link": self.busiest_link,
            "max_utilization": self.max_utilization,
            "avg_utilization": self.avg_utilization,
            "queue_depth_hist": dict(self.queue_depth_hist),
        }


@dataclass(slots=True)
class _Msg:
    idx: int
    route: list
    hop: int = 0
    start: int = 0
    done: int | None = None
    waiting_on: tuple | None = None


# ---------------------------------------------------------------------------
# Setup and finalization shared with repro.routing.engine.  Both drivers
# must resolve delays, routes, hop costs and results through these
# helpers -- parity is tested field-for-field, and a second copy of any
# of this logic is where drift would start.


def _resolve_link_delay(
    layout: GridLayout | None,
    link_delay: dict[tuple[Node, Node], int] | None,
) -> dict[tuple[Node, Node], int]:
    if link_delay is not None:
        return link_delay
    if layout is not None:
        return layout_link_delays(layout)
    return {}


def _resolve_router(
    network: Network,
    router: RoutingTable | Callable[[Node, Node], list] | None,
) -> Callable[[Node, Node], list]:
    if router is None:
        from repro.routing.paths import shortest_hop_routes

        return shortest_hop_routes(network).route
    if isinstance(router, RoutingTable):
        return router.route
    return router


def _build_routes(
    messages: list[Message],
    get_route: Callable[[Node, Node], list],
) -> tuple[list[list], list[int]]:
    """Resolve every message to ``(routes, start_cycles)``.

    Messages are ``(src, dst)`` pairs injected at cycle 0, or timed
    ``(src, dst, start_cycle)`` triples.
    """
    routes: list[list] = []
    starts: list[int] = []
    # Memoize per (src, dst): high-load workloads repeat pairs heavily
    # and routers are deterministic functions of the endpoints.  Routes
    # are shared read-only downstream, so aliasing is safe.
    memo: dict[tuple[Node, Node], list] = {}
    for msg in messages:
        if len(msg) == 3:
            src, dst, start = msg  # timed injection
        else:
            src, dst = msg
            start = 0
        key = (src, dst)
        r = memo.get(key)
        if r is None:
            memo[key] = r = get_route(src, dst)
        routes.append(r)
        starts.append(start)
    for r in routes:
        if len(r) < 1:
            raise ValueError("empty route")
    return routes, starts


def _hop_costs(
    link_delay: dict[tuple[Node, Node], int],
    default_delay: int,
    router_overhead: int,
    mode: str,
    message_length: int,
) -> Callable[[Node, Node], tuple[int, int]]:
    """Validate mode/length; return ``(u, v) -> (advance, busy)``."""
    if mode not in ("store_forward", "cut_through"):
        raise ValueError(f"unknown mode {mode!r}")
    if message_length < 1:
        raise ValueError("message_length >= 1")

    def delay_of(u: Node, v: Node) -> tuple[int, int]:
        """(header advance delay, link busy time) for one hop."""
        wire = link_delay.get((u, v), default_delay)
        if mode == "store_forward":
            d = wire * message_length + router_overhead
            return d, d
        # cut-through: header takes wire+router; the link streams the
        # body for message_length cycles.
        return wire + router_overhead, max(wire + router_overhead,
                                           message_length)

    return delay_of


def _finalize_result(
    *,
    makespan: int,
    lat_hist: Histogram,
    n_messages: int,
    link_load: dict[tuple[Node, Node], int],
    link_busy_time: dict[tuple[Node, Node], int],
    depth_hist: dict[int, int],
    events: int,
) -> SimulationResult:
    """Fold raw per-run tallies into a :class:`SimulationResult`.

    ``link_load`` must be insertion-ordered by first acquisition: the
    busiest-link tie-break is "first link to reach the max load", which
    the oracle gets for free from dict insertion order and the engine
    reproduces with explicit first-use sequencing.
    """
    busiest = max(link_load, key=link_load.__getitem__) if link_load else None
    # Busy fractions clip at 1.0: the last transit may overrun the
    # makespan (its message already arrived; the tail streams on).
    link_utilization = {
        link: min(1.0, busy / makespan) if makespan else 0.0
        for link, busy in link_busy_time.items()
    }
    if obs.enabled():
        obs.count("simulator.runs")
        obs.count("simulator.events", events)
        obs.count("simulator.messages", n_messages)
        obs.count("simulator.hops", sum(link_load.values()))
        for util in link_utilization.values():
            obs.observe(
                "simulator.link_utilization", util,
                bounds=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
            )
        for depth, times in depth_hist.items():
            for _ in range(times):
                obs.observe("simulator.queue_depth", depth)
        from repro.obs.metrics import registry as _registry

        _registry().histogram(
            "simulator.latency", LATENCY_BOUNDS
        ).merge_dict(lat_hist.as_dict())
    return SimulationResult(
        makespan=makespan,
        avg_latency=lat_hist.mean,
        max_latency=int(lat_hist.max) if lat_hist.count else 0,
        messages=n_messages,
        max_link_load=link_load.get(busiest, 0) if busiest else 0,
        busiest_link=busiest,
        link_utilization=link_utilization,
        queue_depth_hist=depth_hist,
        latency_hist=lat_hist.as_dict(),
    )


def simulate(
    network: Network,
    messages: list[Message],
    *,
    layout: GridLayout | None = None,
    router: RoutingTable | Callable[[Node, Node], list] | None = None,
    link_delay: dict[tuple[Node, Node], int] | None = None,
    default_delay: int = 1,
    router_overhead: int = 1,
    mode: str = "store_forward",
    message_length: int = 1,
    max_cycles: int = 10_000_000,
) -> SimulationResult:
    """Run ``messages`` through the network.

    Parameters
    ----------
    layout:
        If given (and ``link_delay`` is not), link delays come from the
        routed wire lengths; otherwise every link costs
        ``default_delay``.
    router:
        A :class:`RoutingTable`, a callable ``(src, dst) -> route``, or
        ``None`` for shortest-hop BFS routes.
    router_overhead:
        Extra cycles per hop (switch traversal).
    mode:
        ``"store_forward"`` -- a link holds the whole message for its
        full transit (busy = wire delay x message length);
        ``"cut_through"`` -- the header pipelines ahead while the body
        streams (per-hop header latency = wire delay + router; link
        busy only for the serialization time, and the tail lands
        ``message_length - 1`` cycles after the header).  The classic
        latency models: SF ~ hops * L * d;  CT ~ hops * d + L.
    message_length:
        Message size in flits (serialization units).

    Messages are ``(src, dst)`` pairs injected at cycle 0, or timed
    ``(src, dst, start_cycle)`` triples -- the form rate sweeps use to
    draw latency-vs-load curves.
    """
    link_delay = _resolve_link_delay(layout, link_delay)
    get_route = _resolve_router(network, router)
    routes, starts = _build_routes(messages, get_route)
    msgs = [
        _Msg(idx=i, route=route, start=start)
        for i, (route, start) in enumerate(zip(routes, starts))
    ]
    delay_of = _hop_costs(
        link_delay, default_delay, router_overhead, mode, message_length
    )

    # Event queue: (time, msg_idx) = message ready to take its next hop.
    # Links are busy until a recorded time; FIFO waiters by (arrival,
    # message index) via re-push with the link's free time.
    events: list[tuple[int, int]] = [(m.start, m.idx) for m in msgs]
    heapq.heapify(events)
    link_free: dict[tuple[Node, Node], int] = {}
    link_load: dict[tuple[Node, Node], int] = {}
    link_busy_time: dict[tuple[Node, Node], int] = {}
    waiters: dict[tuple[Node, Node], int] = {}
    depth_hist: dict[int, int] = {}
    finished = 0
    makespan = 0
    lat_hist = Histogram(LATENCY_BOUNDS)

    with obs.span(
        "simulate", messages=len(msgs), mode=mode,
        message_length=message_length,
    ) as sp:
        guard = 0
        while events:
            guard += 1
            if guard > max_cycles:
                raise RuntimeError("simulation exceeded max_cycles")
            t, idx = heapq.heappop(events)
            m = msgs[idx]
            if m.hop >= len(m.route) - 1:
                if m.done is None:
                    # Cut-through: the tail arrives message_length - 1
                    # cycles after the header (body streaming).
                    tail = message_length - 1 if mode == "cut_through" else 0
                    if len(m.route) == 1:
                        tail = 0
                    m.done = t + tail
                    finished += 1
                    makespan = max(makespan, m.done)
                    lat_hist.observe(m.done - m.start)
                continue
            u, v = m.route[m.hop], m.route[m.hop + 1]
            link = (u, v)
            free_at = link_free.get(link, 0)
            if t < free_at:
                if m.waiting_on != link:
                    m.waiting_on = link
                    depth = waiters.get(link, 0) + 1
                    waiters[link] = depth
                    depth_hist[depth] = depth_hist.get(depth, 0) + 1
                heapq.heappush(events, (free_at, idx))
                continue
            if m.waiting_on is not None:
                waiters[m.waiting_on] -= 1
                m.waiting_on = None
            d, busy = delay_of(u, v)
            link_free[link] = t + busy
            link_busy_time[link] = link_busy_time.get(link, 0) + busy
            link_load[link] = link_load.get(link, 0) + 1
            m.hop += 1
            heapq.heappush(events, (t + d, idx))
        sp.add("events", guard)

    if finished != len(msgs):
        raise RuntimeError("simulation ended with unfinished messages")
    return _finalize_result(
        makespan=makespan,
        lat_hist=lat_hist,
        n_messages=len(msgs),
        link_load=link_load,
        link_busy_time=link_busy_time,
        depth_hist=depth_hist,
        events=guard,
    )
