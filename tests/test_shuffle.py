"""Shuffle-exchange and de Bruijn networks."""

import networkx as nx
import pytest

from conftest import assert_layout_ok
from repro.core.schemes import layout_collinear_network, layout_generic_grid
from repro.topology.shuffle import DeBruijn, ShuffleExchange


class TestShuffleExchange:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_counts(self, n):
        net = ShuffleExchange(n)
        assert net.num_nodes == 2**n
        assert net.max_degree <= 3
        assert net.is_connected()

    def test_exchange_edges_present(self):
        net = ShuffleExchange(4)
        ms = net.edge_multiset()
        assert (4, 5) in ms  # exchange pair

    def test_shuffle_is_rotation(self):
        net = ShuffleExchange(3)
        # 3 (011) rotates to 6 (110).
        assert (3, 6) in net.edge_multiset()

    def test_degree_at_most_three(self):
        net = ShuffleExchange(5)
        assert all(net.degree(v) <= 3 for v in net.nodes)


class TestDeBruijn:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_counts(self, n):
        net = DeBruijn(n)
        assert net.num_nodes == 2**n
        assert net.max_degree <= 4
        assert net.is_connected()

    def test_diameter_is_n(self):
        # de Bruijn diameter = n (shift in one symbol per hop).
        assert DeBruijn(4).diameter() == 4

    def test_matches_networkx_structure(self):
        ours = nx.Graph(DeBruijn(3).edges)
        ref = nx.Graph()
        for w in range(8):
            for b in (0, 1):
                v = (2 * w + b) % 8
                if v != w:
                    ref.add_edge(w, v)
        assert nx.is_isomorphic(ours, ref)


class TestLayouts:
    @pytest.mark.parametrize(
        "net", [ShuffleExchange(4), DeBruijn(4)], ids=lambda n: n.name
    )
    def test_generic_grid(self, net):
        lay = layout_generic_grid(net, layers=4)
        assert_layout_ok(lay, net)

    @pytest.mark.parametrize(
        "net", [ShuffleExchange(4), DeBruijn(4)], ids=lambda n: n.name
    )
    def test_collinear(self, net):
        lay = layout_collinear_network(net)
        assert_layout_ok(lay, net)

    def test_cutwidth_small(self):
        """SE(3)'s exact cutwidth -- the graphs ref. [17] built the
        lower-bound machinery for are tractable at toy sizes."""
        from repro.collinear.cutwidth import exact_cutwidth

        cw = exact_cutwidth(ShuffleExchange(3))
        assert 2 <= cw <= 6