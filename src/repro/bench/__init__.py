"""Benchmark/report harness shared by benches and examples."""

from repro.bench.harness import comparison_row, print_table

__all__ = ["print_table", "comparison_row"]
