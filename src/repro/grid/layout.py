"""The :class:`GridLayout` container: placements + wires + layer count.

A layout's *area* is the area of the smallest upright rectangle
containing all nodes and wires (Section 2.2); its *volume* is
``layers * area``.  Both are exact integer quantities here, since the
model is the paper's own grid model rather than a physical substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.grid.geometry import Rect, Segment
from repro.grid.wire import Wire

__all__ = ["Placement", "GridLayout"]


@dataclass(frozen=True, slots=True)
class Placement:
    """A node embedded as a square (or rectangle) in the active layer."""

    node: Hashable
    rect: Rect
    layer: int = 1


@dataclass(slots=True)
class GridLayout:
    """A complete multilayer grid layout.

    Attributes
    ----------
    layers:
        Number of wiring layers ``L`` the layout is entitled to use
        (the multilayer 2-D grid model).  Wires may use fewer -- with
        odd ``L`` the orthogonal scheme uses ``L - 1`` (Section 2.4) --
        but never more; the validator enforces the bound.
    placements:
        Node squares, keyed by node label.
    wires:
        Routed nets, one per network edge (parallel edges are separate
        wires distinguished by ``edge_key``).
    meta:
        Free-form provenance written by the layout schemes (scheme name,
        channel structure, track counts); benches and tests read it.
    """

    layers: int
    placements: dict[Hashable, Placement] = field(default_factory=dict)
    wires: list[Wire] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # -- construction ---------------------------------------------------

    def place(self, node: Hashable, rect: Rect, layer: int = 1) -> None:
        if node in self.placements:
            raise ValueError(f"node placed twice: {node!r}")
        self.placements[node] = Placement(node, rect, layer)

    def add_wire(self, wire: Wire) -> None:
        self.wires.append(wire)

    # -- measurement ----------------------------------------------------

    def bounding_box(self) -> Rect:
        """Smallest upright rectangle containing all nodes and wires."""
        xs: list[int] = []
        ys: list[int] = []
        for p in self.placements.values():
            xs += [p.rect.x0, p.rect.x1]
            ys += [p.rect.y0, p.rect.y1]
        for w in self.wires:
            for s in w.segments:
                xs += [s.x1, s.x2]
                ys += [s.y1, s.y2]
        if not xs:
            return Rect(0, 0, 0, 0)
        x0, x1 = min(xs), max(xs)
        y0, y1 = min(ys), max(ys)
        return Rect(x0, y0, x1 - x0, y1 - y0)

    @property
    def width(self) -> int:
        return self.bounding_box().w

    @property
    def height(self) -> int:
        return self.bounding_box().h

    @property
    def area(self) -> int:
        bb = self.bounding_box()
        return bb.w * bb.h

    @property
    def volume(self) -> int:
        return self.layers * self.area

    def max_wire_length(self) -> int:
        if not self.wires:
            return 0
        return max(w.length for w in self.wires)

    def total_wire_length(self) -> int:
        return sum(w.length for w in self.wires)

    def layers_used(self) -> set[int]:
        used: set[int] = set()
        for w in self.wires:
            used |= w.layers_used()
        return used

    def via_count(self) -> int:
        return sum(len(w.vias()) for w in self.wires)

    # -- structure ------------------------------------------------------

    def edge_multiset(self) -> dict[tuple, int]:
        """Multiset of routed node pairs, for topology verification."""
        out: dict[tuple, int] = {}
        for w in self.wires:
            a, b, _ = w.key()
            key = (a, b)
            out[key] = out.get(key, 0) + 1
        return out

    def wire_lengths_by_edge(self) -> dict[tuple, int]:
        """Map (u, v, edge_key) -> routed length, endpoints sorted."""
        return {w.key(): w.length for w in self.wires}

    def segments(self) -> Iterable[tuple[Wire, Segment]]:
        for w in self.wires:
            for s in w.segments:
                yield (w, s)

    def summary(self) -> dict:
        """A metrics snapshot used by benches and EXPERIMENTS.md."""
        bb = self.bounding_box()
        return {
            "nodes": len(self.placements),
            "wires": len(self.wires),
            "layers": self.layers,
            "layers_used": len(self.layers_used()),
            "width": bb.w,
            "height": bb.h,
            "area": bb.w * bb.h,
            "volume": self.layers * bb.w * bb.h,
            "max_wire_length": self.max_wire_length(),
            "total_wire_length": self.total_wire_length(),
            "vias": self.via_count(),
        }
