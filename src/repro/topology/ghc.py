"""Generalized hypercubes (Section 4.1, refs [5, 14]).

An n-dimensional radix-``(r_{n-1}, ..., r_0)`` generalized hypercube
has digit-tuple nodes; two nodes are adjacent iff they differ in
exactly one digit (each dimension is a complete graph).  It is the
Cartesian product of complete graphs, which is how the paper lays it
out (Section 3.2's product scheme over the K_r collinear layouts).
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node

__all__ = ["GeneralizedHypercube"]


class GeneralizedHypercube(Network):
    """Mixed-radix generalized hypercube.

    ``radices`` is ``(r_{n-1}, ..., r_0)``, most significant digit
    first, matching the paper's notation.  ``GeneralizedHypercube((r,) *
    n)`` is the uniform radix-r case; radix 2 in every digit gives the
    binary hypercube.
    """

    def __init__(self, radices: Sequence[int]):
        rs = tuple(radices)
        if not rs or any(r < 2 for r in rs):
            raise ValueError("all radices >= 2")
        self.radices = rs
        self.n = len(rs)
        self.name = f"GHC{rs}"

    def _build_nodes(self) -> Sequence[Node]:
        out: list[tuple[int, ...]] = [()]
        for r in self.radices:
            out = [t + (d,) for t in out for d in range(r)]
        return out

    def _build_edges(self) -> Sequence[Edge]:
        edges: list[Edge] = []
        for v in self.nodes:
            for i, r in enumerate(self.radices):
                for d in range(v[i] + 1, r):
                    w = v[:i] + (d,) + v[i + 1 :]
                    edges.append((v, w))
        return edges

    def dimension_of_edge(self, u: Node, v: Node) -> int:
        """Paper-style dimension (0 = least significant digit)."""
        diffs = [i for i in range(self.n) if u[i] != v[i]]
        if len(diffs) != 1:
            raise ValueError(f"not a GHC edge: {u} {v}")
        return self.n - 1 - diffs[0]
