"""Machine-readable run reports.

A :class:`RunReport` freezes one observed run -- what was laid out
(spec), under which layer budget, the measured metrics snapshot, the
span tree, and the environment (library version, python, platform) --
into a JSON document that can be diffed across PRs.  The schema is
deliberately small and validated by :func:`validate_report`, which CI
uses to gate the ``python -m repro stats --report`` smoke run.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "RunReport",
    "collect_report",
    "environment_info",
    "validate_report",
]

REPORT_SCHEMA_VERSION = "repro.run-report/v1"


def environment_info() -> dict:
    """Version/interpreter/platform stamp included in every report."""
    from repro import __version__  # deferred: repro imports obs modules

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


@dataclass(slots=True)
class RunReport:
    """One run's observations, serializable to/from JSON."""

    name: str
    spec: dict = field(default_factory=dict)
    layers: int | None = None
    command: list[str] | None = None
    metrics: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    schema: str = REPORT_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def write(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")


def collect_report(
    name: str,
    *,
    spec: dict | None = None,
    layers: int | None = None,
    command: list[str] | None = None,
    extra: dict | None = None,
) -> RunReport:
    """Snapshot the current trace forest + metrics into a report."""
    return RunReport(
        name=name,
        spec=dict(spec or {}),
        layers=layers,
        command=list(command) if command is not None else None,
        metrics=_metrics.registry().snapshot(),
        spans=[r.as_dict() for r in _trace.trace_roots()],
        environment=environment_info(),
        extra=dict(extra or {}),
    )


def _check_span(node, path: str, problems: list[str]) -> None:
    if not isinstance(node, dict):
        problems.append(f"{path}: span is not an object")
        return
    if not isinstance(node.get("name"), str) or not node.get("name"):
        problems.append(f"{path}: span missing non-empty 'name'")
    if not isinstance(node.get("duration_ms"), (int, float)):
        problems.append(f"{path}: span missing numeric 'duration_ms'")
    for key in ("attrs", "counts"):
        if not isinstance(node.get(key, {}), dict):
            problems.append(f"{path}: span '{key}' is not an object")
    children = node.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}: span 'children' is not a list")
        return
    for i, child in enumerate(children):
        _check_span(child, f"{path}.children[{i}]", problems)


def validate_report(data: dict) -> None:
    """Raise ``ValueError`` listing every schema problem in ``data``."""
    problems: list[str] = []
    if not isinstance(data, dict):
        raise ValueError("report is not a JSON object")
    if data.get("schema") != REPORT_SCHEMA_VERSION:
        problems.append(
            f"schema is {data.get('schema')!r}, "
            f"expected {REPORT_SCHEMA_VERSION!r}"
        )
    if not isinstance(data.get("name"), str) or not data.get("name"):
        problems.append("missing non-empty 'name'")
    if not isinstance(data.get("spec", {}), dict):
        problems.append("'spec' is not an object")
    layers = data.get("layers")
    if layers is not None and not isinstance(layers, int):
        problems.append("'layers' is neither null nor an integer")
    env = data.get("environment")
    if not isinstance(env, dict):
        problems.append("missing 'environment' object")
    else:
        for key in ("repro_version", "python", "platform"):
            if not env.get(key):
                problems.append(f"environment missing '{key}'")
    met = data.get("metrics")
    if not isinstance(met, dict):
        problems.append("missing 'metrics' object")
    else:
        for key in ("counters", "gauges", "histograms"):
            if key in met and not isinstance(met[key], dict):
                problems.append(f"metrics '{key}' is not an object")
    spans = data.get("spans")
    if not isinstance(spans, list):
        problems.append("missing 'spans' list")
    else:
        for i, node in enumerate(spans):
            _check_span(node, f"spans[{i}]", problems)
    if problems:
        raise ValueError(
            "invalid run report: " + "; ".join(problems)
        )
