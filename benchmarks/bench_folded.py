"""E5.3: Section 5.3 -- folded hypercubes and enhanced cubes.

Regenerates the 49 N^2/(9 L^2) and 100 N^2/(9 L^2) area terms from the
dedicated-extra-track construction (one horizontal + one vertical track
per diameter/random link) and checks the track accounting exactly:
N/2 extra tracks per direction for the folded hypercube, ~N for the
enhanced cube.
"""

from repro.bench.harness import comparison_row
from repro.core import (
    layout_enhanced_cube,
    layout_folded_hypercube,
    layout_hypercube,
    measure,
)
from repro.core.analysis import (
    enhanced_cube_prediction,
    folded_hypercube_prediction,
)


def test_folded_area(benchmark, report):
    rows = []
    for n in (4, 6, 8):
        for L in (2, 4):
            m = measure(layout_folded_hypercube(n, layers=L, node_side="min"))
            p = folded_hypercube_prediction(n, L)
            rows.append(comparison_row([n, 1 << n, L], round(p.area), m.area))
    report(
        "E5.3a: folded hypercube area vs 49 N^2/(9 L^2)",
        ["n", "N", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_folded_hypercube, args=(8,), kwargs={"node_side": "min"},
        rounds=1, iterations=1,
    )


def test_extra_track_accounting(report, benchmark):
    rows = []
    for n in (4, 6, 8):
        plain = layout_hypercube(n)
        folded = layout_folded_hypercube(n)
        N = 1 << n
        dh = sum(folded.meta["row_tracks"]) - sum(plain.meta["row_tracks"])
        dv = sum(folded.meta["col_tracks"]) - sum(plain.meta["col_tracks"])
        assert dh == N // 2 and dv == N // 2
        rows.append([n, N, N // 2, dh, dv])
    report(
        "E5.3b: diameter links consume exactly N/2 extra tracks per "
        "direction (paper's accounting)",
        ["n", "N", "paper N/2", "extra H tracks", "extra V tracks"],
        rows,
    )
    benchmark(layout_folded_hypercube, 5)


def test_enhanced_area(report, benchmark):
    rows = []
    for n in (4, 6, 8):
        m = measure(layout_enhanced_cube(n, node_side="min"))
        p = enhanced_cube_prediction(n, 2)
        rows.append(comparison_row([n, 1 << n], round(p.area), m.area))
    report(
        "E5.3c: enhanced cube area vs 100 N^2/(9 L^2) "
        "(paper bound is conservative: random links that land in-row "
        "route as ordinary links)",
        ["n", "N", "paper", "measured", "ratio"],
        rows,
    )
    benchmark(layout_enhanced_cube, 5)


def test_family_ordering(report, benchmark):
    """hypercube < folded < enhanced, at every L (Section 5 overall)."""
    rows = []
    for L in (2, 4, 8):
        h = measure(layout_hypercube(6, layers=L, node_side="min")).area
        f = measure(layout_folded_hypercube(6, layers=L, node_side="min")).area
        e = measure(layout_enhanced_cube(6, layers=L, node_side="min")).area
        assert h < f < e
        rows.append([L, h, f, e, f"{f / h:.2f}", f"{e / h:.2f}"])
    report(
        "E5.3d: area ordering hypercube/folded/enhanced "
        "(paper constants 16/9 : 49/9 : 100/9 -> ratios 3.06 and 6.25)",
        ["L", "hypercube", "folded", "enhanced", "folded/hc", "enhanced/hc"],
        rows,
    )
    benchmark(layout_folded_hypercube, 6, layers=4)
