"""Routing and message-level network simulation.

The paper's layouts exist to serve parallel-processing interconnects:
their cost (area/volume) and performance (wire length -> link delay)
are the decision criteria of its introduction.  This package closes
the loop from layout geometry to network performance:

* :mod:`repro.routing.paths` -- routing algorithms: dimension-order
  (e-cube) routing for the digit networks (hypercubes, k-ary n-cubes,
  generalized hypercubes), plus generic shortest-hop and minimum-wire
  routing over any routed layout;
* :mod:`repro.routing.traffic` -- seeded traffic patterns (random
  permutation, bit complement, transpose, all-to-all, hot spot);
* :mod:`repro.routing.simulator` -- a cycle-driven, store-and-forward
  simulator with per-link delays taken from the layout's routed wire
  lengths, reporting makespan, latency and congestion.
"""

from repro.routing.collective import (
    binomial_broadcast,
    recursive_doubling_allgather,
    schedule_rounds,
)
from repro.routing.paths import (
    RoutingTable,
    dimension_order_route,
    layout_link_delays,
    min_wire_routes,
    shortest_hop_routes,
)
from repro.routing.simulator import SimulationResult, simulate
from repro.routing.traffic import (
    all_to_all,
    bit_complement,
    hot_spot,
    random_permutation,
    rate_injection,
    transpose,
)

__all__ = [
    "dimension_order_route",
    "shortest_hop_routes",
    "min_wire_routes",
    "layout_link_delays",
    "RoutingTable",
    "simulate",
    "SimulationResult",
    "random_permutation",
    "bit_complement",
    "transpose",
    "all_to_all",
    "hot_spot",
    "rate_injection",
    "binomial_broadcast",
    "recursive_doubling_allgather",
    "schedule_rounds",
]
