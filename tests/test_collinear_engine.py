"""Collinear engine: construction, optimality certificate, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collinear.engine import collinear_layout


def ring_edges(k):
    return [(i, (i + 1) % k) for i in range(k)]


class TestEngine:
    def test_ring_two_tracks(self):
        lay = collinear_layout(range(6), ring_edges(6))
        assert lay.num_tracks == 2
        assert lay.is_optimal()
        lay.check()

    def test_path_one_track(self):
        lay = collinear_layout(range(5), [(i, i + 1) for i in range(4)])
        assert lay.num_tracks == 1

    def test_respects_order(self):
        # A path laid out in scrambled order needs more tracks.
        edges = [(i, i + 1) for i in range(4)]
        lay = collinear_layout(range(5), edges, [0, 2, 4, 1, 3])
        assert lay.num_tracks == lay.max_cut() > 1

    def test_order_callable(self):
        lay = collinear_layout(range(4), [(0, 1)], order=lambda ns: sorted(ns, reverse=True))
        assert lay.order == [3, 2, 1, 0]

    def test_parallel_edges_use_two_tracks(self):
        lay = collinear_layout(range(2), [(0, 1), (0, 1)])
        assert lay.num_tracks == 2

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="permutation"):
            collinear_layout(range(3), [], order=[0, 1])
        with pytest.raises(ValueError, match="permutation"):
            collinear_layout(range(3), [], order=[0, 1, 1])

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            collinear_layout(range(3), [(1, 1)])

    def test_cut_profile(self):
        lay = collinear_layout(range(4), ring_edges(4))
        assert lay.cut_profile() == [2, 2, 2]

    def test_interval(self):
        lay = collinear_layout(range(5), [(4, 1)])
        assert lay.interval(0) == (1, 4)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(2, 16))
    m = draw(st.integers(1, 40))
    edges = []
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            edges.append((u, v))
    if not edges:
        edges = [(0, 1)]
    return n, edges


class TestEngineProperties:
    @given(random_graphs())
    @settings(max_examples=150, deadline=None)
    def test_always_optimal_for_given_order(self, graph):
        n, edges = graph
        lay = collinear_layout(range(n), edges)
        lay.check()
        assert lay.is_optimal()

    @given(random_graphs(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_track_count_lower_bounded_by_degree_half(self, graph, rng):
        """Any order needs at least ceil(maxdeg/2) tracks (each track
        supplies at most 2 edge-ends at a node)."""
        n, edges = graph
        order = list(range(n))
        rng.shuffle(order)
        lay = collinear_layout(range(n), edges, order)
        deg = {}
        for u, v in edges:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        assert lay.num_tracks >= -(-max(deg.values()) // 2)

    @given(random_graphs())
    @settings(max_examples=100, deadline=None)
    def test_reversal_symmetry(self, graph):
        """Reversing the order cannot change the optimal track count."""
        n, edges = graph
        fwd = collinear_layout(range(n), edges, list(range(n)))
        rev = collinear_layout(range(n), edges, list(range(n))[::-1])
        assert fwd.num_tracks == rev.num_tracks
