"""Layout inspection: channel reports and density profiles.

Debugging/analysis tooling over the builder's metadata and the routed
geometry: per-channel track counts and physical extents, where the
area goes (cells vs channels), and cut/density profiles of collinear
layouts (the quantity the track formulas really bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collinear.engine import CollinearLayout
from repro.grid.layout import GridLayout

__all__ = [
    "ChannelReport",
    "channel_report",
    "area_breakdown",
    "density_histogram",
]


@dataclass(frozen=True, slots=True)
class ChannelReport:
    """Summary of one layout's channel structure."""

    row_tracks: list[int]
    col_tracks: list[int]
    row_extents: list[int]
    col_extents: list[int]
    total_row_tracks: int
    total_col_tracks: int
    busiest_row: int
    busiest_col: int

    def as_dict(self) -> dict:
        return {
            "row_tracks": self.row_tracks,
            "col_tracks": self.col_tracks,
            "row_extents": self.row_extents,
            "col_extents": self.col_extents,
            "total_row_tracks": self.total_row_tracks,
            "total_col_tracks": self.total_col_tracks,
            "busiest_row": self.busiest_row,
            "busiest_col": self.busiest_col,
        }


def channel_report(layout: GridLayout) -> ChannelReport:
    """Channel structure of a builder-produced layout."""
    meta = layout.meta
    if "row_tracks" not in meta:
        raise ValueError("layout has no channel metadata (not builder-made)")
    rt = list(meta["row_tracks"])
    ct = list(meta["col_tracks"])
    return ChannelReport(
        row_tracks=rt,
        col_tracks=ct,
        row_extents=list(meta["row_channel_extents"]),
        col_extents=list(meta["col_channel_extents"]),
        total_row_tracks=sum(rt),
        total_col_tracks=sum(ct),
        busiest_row=max(rt, default=0),
        busiest_col=max(ct, default=0),
    )


def area_breakdown(layout: GridLayout) -> dict:
    """Where the bounding-box side lengths go: cells vs channels.

    The 'channel share' is the quantity the paper's leading terms
    describe; the 'cell share' is the o(.) node-area term.
    """
    meta = layout.meta
    if "col_widths" not in meta:
        raise ValueError("layout has no geometry metadata")
    cell_w = sum(meta["col_widths"])
    chan_w = sum(meta["col_channel_extents"])
    cell_h = sum(meta["row_heights"])
    chan_h = sum(meta["row_channel_extents"])
    bb = layout.bounding_box()
    return {
        "width": bb.w,
        "cell_width": cell_w,
        "channel_width": chan_w,
        "height": bb.h,
        "cell_height": cell_h,
        "channel_height": chan_h,
        "channel_share_w": chan_w / max(cell_w + chan_w, 1),
        "channel_share_h": chan_h / max(cell_h + chan_h, 1),
    }


def density_histogram(lay: CollinearLayout, *, width: int = 60) -> str:
    """ASCII cut-density profile of a collinear layout.

    One line per inter-position gap; bar length proportional to the
    number of edges crossing the gap (its peak equals the track count
    when the layout is optimal).
    """
    profile = lay.cut_profile()
    if not profile:
        return "(single node)"
    peak = max(profile) or 1
    lines = []
    for i, c in enumerate(profile):
        bar = "#" * max(1 if c else 0, round(c / peak * width))
        lines.append(f"{i:>4} {c:>5} {bar}")
    lines.append(f"peak {peak} (tracks used: {lay.num_tracks})")
    return "\n".join(lines)
