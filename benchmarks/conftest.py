"""Benchmark harness plumbing.

Each bench regenerates one paper artifact (table/figure/closed form)
and reports paper-vs-measured rows.  Reports go to three places:

* printed (visible with ``pytest -s``);
* appended to ``benchmarks/results/<bench>.txt`` so EXPERIMENTS.md can
  quote them verbatim;
* accumulated into ``benchmarks/results/<bench>.json`` -- the same
  tables as structured data -- and aggregated at session end into
  ``BENCH_summary.json`` at the repo root, the machine-diffable perf
  trajectory across PRs (environment stamp + per-bench wall times).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

from repro import __version__
from repro.bench.harness import format_table, json_cell
from repro.bench.trajectory import git_sha

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SUMMARY_SCHEMA = "repro.bench-summary/v1"

# module name -> {"bench", "tables", "tests"}; filled as benches run,
# flushed to JSON at session end.
_SESSION: dict[str, dict] = {}

# Modules whose .txt report has been truncated this session: each
# module restarts its own report on first write, but other modules'
# reports (from earlier partial runs) are left alone.
_TXT_RESET: set[str] = set()


def _module_record(module: str) -> dict:
    rec = _SESSION.get(module)
    if rec is None:
        rec = _SESSION[module] = {"bench": module, "tables": [], "tests": []}
    return rec


def _environment() -> dict:
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


@pytest.fixture
def report(request):
    """report(title, headers, rows): print + persist a comparison table."""
    RESULTS.mkdir(exist_ok=True)
    module = request.node.module.__name__
    out_file = RESULTS / f"{module}.txt"
    if module not in _TXT_RESET:
        _TXT_RESET.add(module)
        out_file.unlink(missing_ok=True)
    rec = _module_record(module)

    def _report(title: str, headers, rows) -> None:
        text = f"\n== {title} ==\n{format_table(headers, rows)}\n"
        print(text)
        with out_file.open("a") as fh:
            fh.write(text)
        rec["tables"].append(
            {
                "test": request.node.name,
                "title": title,
                "headers": [str(h) for h in headers],
                "rows": [[json_cell(c) for c in row] for row in rows],
            }
        )

    return _report


@pytest.fixture(autouse=True)
def _bench_timer(request):
    """Record every bench test's wall time into the session summary."""
    rec = _module_record(request.node.module.__name__)
    t0 = time.perf_counter()
    yield
    rec["tests"].append(
        {
            "test": request.node.name,
            "seconds": round(time.perf_counter() - t0, 4),
        }
    )


def _flush_json_results() -> None:
    if not _SESSION:
        return
    env = _environment()
    RESULTS.mkdir(exist_ok=True)
    for module in sorted(_SESSION):
        rec = _SESSION[module]
        out = {
            "schema": "repro.bench-result/v1",
            "environment": env,
            **rec,
        }
        path = RESULTS / f"{module}.json"
        with path.open("w") as fh:
            json.dump(out, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # The summary merges EVERY per-bench result on disk, not just this
    # session's: a partial run (``pytest benchmarks/bench_kary.py``)
    # used to overwrite BENCH_summary.json with a one-bench document,
    # making it look like every other bench had vanished.  Results from
    # earlier sessions keep their own (older) environment stamp in the
    # per-bench file; the merge flags them as stale below.
    benches = []
    stale = []
    for path in sorted(RESULTS.glob("*.json")):
        try:
            with path.open() as fh:
                rec = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if rec.get("schema") != "repro.bench-result/v1":
            continue
        module = rec.get("bench", path.stem)
        tests = rec.get("tests", [])
        timestamp = rec.get("environment", {}).get("timestamp")
        if module not in _SESSION:
            stale.append((module, timestamp))
        benches.append(
            {
                "bench": module,
                "tests": len(tests),
                "tables": len(rec.get("tables", [])),
                "seconds": round(
                    sum(t.get("seconds", 0.0) for t in tests), 4
                ),
                "titles": [t["title"] for t in rec.get("tables", [])],
                "results_file": str(path.relative_to(REPO_ROOT)),
                "timestamp": timestamp,
            }
        )
    benches.sort(key=lambda b: b["bench"])
    if stale:
        names = ", ".join(
            f"{m} (from {ts or 'unknown time'})" for m, ts in stale
        )
        print(
            f"\n[bench] BENCH_summary.json merges {len(stale)} stale "
            f"result(s) not re-run this session: {names}"
        )
    summary = {
        "schema": SUMMARY_SCHEMA,
        "environment": env,
        "total_seconds": round(sum(b["seconds"] for b in benches), 4),
        "benches": benches,
    }
    with (REPO_ROOT / "BENCH_summary.json").open("w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _append_trajectory(summary)


def _append_trajectory(summary: dict) -> None:
    """Append this session to the perf-regression trajectory.

    Partial runs (``pytest benchmarks/bench_kary.py``) would register
    as "every other bench vanished" in a diff, so only sessions that
    ran the performance gates contribute a record.  Disable entirely
    with ``REPRO_NO_TRAJECTORY=1`` (CI's throwaway runs do).
    """
    if os.environ.get("REPRO_NO_TRAJECTORY"):
        return
    from repro.bench.trajectory import (
        GATE_BENCHES,
        append_record,
        trajectory_record,
    )

    if any(name not in _SESSION for name in GATE_BENCHES):
        return

    record = trajectory_record(
        summary,
        {m: rec for m, rec in _SESSION.items()},
        sha=git_sha(REPO_ROOT),
    )
    append_record(REPO_ROOT / "benchmarks" / "trajectory.jsonl", record)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results():
    """Flush JSON results at session end.

    Individual modules truncate their own .txt report on first write
    (see the ``report`` fixture); results of benches *not* run this
    session stay on disk and are merged -- marked stale -- into the
    summary, so partial runs never masquerade as full ones.
    """
    yield
    _flush_json_results()
