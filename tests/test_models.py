"""Layout model descriptors."""

import pytest

from repro.core import layout_hypercube, layout_kary
from repro.core.folding import fold_layout
from repro.core.models import (
    Multilayer3DModel,
    MultilayerGridModel,
    ThompsonModel,
    model_of,
)
from repro.core.threedee import layout_product_3d
from repro.grid.validate import LayoutError
from repro.topology import Ring


class TestThompson:
    def test_accepts_two_layer_layout(self):
        lay = layout_kary(3, 2, layers=2)
        ThompsonModel().check(lay)

    def test_rejects_multilayer(self):
        lay = layout_kary(3, 2, layers=4)
        with pytest.raises(LayoutError, match="L = 2"):
            ThompsonModel().check(lay)

    def test_rejects_stacked_nodes(self):
        folded = fold_layout(layout_hypercube(6, layers=2), 4)
        with pytest.raises(LayoutError):
            ThompsonModel().check(folded)


class TestMultilayer2D:
    def test_accepts_within_budget(self):
        lay = layout_hypercube(5, layers=6)
        MultilayerGridModel(8).check(lay)

    def test_rejects_over_budget(self):
        lay = layout_hypercube(5, layers=8)
        with pytest.raises(LayoutError, match="exceeds"):
            MultilayerGridModel(4).check(lay)

    def test_rejects_risers(self):
        lay = layout_product_3d(Ring(3), Ring(3), Ring(3), layers=6)
        with pytest.raises(LayoutError, match="first layer|3-D"):
            MultilayerGridModel(8).check(lay)


class TestMultilayer3D:
    def test_accepts_deck_stack(self):
        lay = layout_product_3d(Ring(3), Ring(3), Ring(3), layers=6)
        Multilayer3DModel(6, 3).check(lay)

    def test_rejects_too_many_active_layers(self):
        lay = layout_product_3d(Ring(4), Ring(4), Ring(4), layers=8)
        with pytest.raises(LayoutError, match="active"):
            Multilayer3DModel(8, 2).check(lay)


class TestModelOf:
    def test_thompson_layout(self):
        m = model_of(layout_kary(3, 2, layers=2))
        assert isinstance(m, ThompsonModel)

    def test_multilayer_layout(self):
        m = model_of(layout_kary(3, 2, layers=6))
        assert isinstance(m, MultilayerGridModel)
        assert m.layers == 6

    def test_folded_is_3d(self):
        folded = fold_layout(layout_hypercube(6, layers=2), 8)
        m = model_of(folded)
        assert isinstance(m, Multilayer3DModel)
        assert m.active_layers == 4

    def test_deck_stack_is_3d(self):
        lay = layout_product_3d(Ring(3), Ring(3), Ring(3), layers=6)
        m = model_of(lay)
        assert isinstance(m, Multilayer3DModel)
        assert m.active_layers == 3

    def test_names(self):
        assert "Thompson" in ThompsonModel().name
        assert "L=4" in MultilayerGridModel(4).name
        assert "L_A=3" in Multilayer3DModel(8, 3).name
