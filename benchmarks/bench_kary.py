"""E3.1: Section 3.1 -- k-ary n-cube collinear tracks and L-layer area.

Regenerates, for sweeps of (k, n, L):

* the collinear track counts f_k(n) = 2(k^n - 1)/(k - 1), exactly;
* the L-layer area against 16 N^2/(L^2 k^2) (+ the odd-L variant);
* the folded-order maximum wire length against the O(N/(L k^2)) bound.
"""

import pytest

from repro.bench.harness import comparison_row
from repro.collinear.formulas import kary_tracks
from repro.collinear.orders import mixed_radix_order
from repro.collinear.engine import collinear_layout
from repro.core import layout_kary, measure
from repro.core.analysis import kary_prediction
from repro.topology import KAryNCube


def test_collinear_track_formula(benchmark, report):
    rows = []
    for k in (3, 4, 5, 8):
        for n in (1, 2, 3):
            net = KAryNCube(k, n)
            lay = collinear_layout(
                net.nodes, net.edges, mixed_radix_order([k] * n)
            )
            assert lay.num_tracks == kary_tracks(k, n)
            rows.append([k, n, kary_tracks(k, n), lay.num_tracks])
    report(
        "E3.1a: collinear k-ary n-cube tracks, f_k(n) = 2(k^n-1)/(k-1)",
        ["k", "n", "paper", "measured"],
        rows,
    )
    benchmark(collinear_layout, KAryNCube(4, 3).nodes, KAryNCube(4, 3).edges,
              mixed_radix_order([4] * 3))


def test_area_sweep_even_layers(benchmark, report):
    rows = []
    for k, n in ((4, 2), (4, 4), (6, 4), (8, 2), (8, 4)):
        for L in (2, 4, 8):
            m = measure(layout_kary(k, n, layers=L, node_side="min"))
            p = kary_prediction(k, n, L)
            rows.append(comparison_row([k, n, L], round(p.area), m.area))
    report(
        "E3.1b: L-layer k-ary n-cube area vs 16 N^2/(L^2 k^2)",
        ["k", "n", "L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark.pedantic(
        layout_kary, args=(6, 4), kwargs={"layers": 4, "node_side": "min"},
        rounds=1, iterations=1,
    )


def test_odd_layer_area(report, benchmark):
    rows = []
    for L in (3, 5, 7):
        m = measure(layout_kary(4, 4, layers=L, node_side="min"))
        p = kary_prediction(4, 4, L)
        rows.append(comparison_row([L], round(p.area), m.area))
        even = measure(layout_kary(4, 4, layers=L - 1, node_side="min"))
        assert m.area == even.area  # odd L geometrically equals L-1
    report(
        "E3.1c: odd-L area vs 16 N^2/((L^2-1) k^2)",
        ["L", "paper", "measured", "ratio"],
        rows,
    )
    benchmark(layout_kary, 4, 2, layers=3)


def test_folded_max_wire(report, benchmark):
    rows = []
    folded_wires = []
    for k in (4, 8, 16):
        n = 2
        plain = measure(layout_kary(k, n, layers=2, node_side="min"))
        folded = measure(
            layout_kary(k, n, layers=2, node_side="min", folded=True)
        )
        bound = kary_prediction(k, n, 2).max_wire
        rows.append([k, plain.max_wire, folded.max_wire, round(bound, 1)])
        folded_wires.append(folded.max_wire)
        # O(N/(Lk^2)) with a small constant: for n=2 the bound is O(1)
        # in k, while the unfolded wire grows linearly.
        assert folded.max_wire <= 4 * bound
    assert folded_wires[0] == folded_wires[-1]  # flat in k, as O() demands
    report(
        "E3.1d: folding rows/columns cuts max wire to O(N/(L k^2))",
        ["k", "plain max wire", "folded max wire", "O() normalizer"],
        rows,
    )
    benchmark(layout_kary, 8, 2, layers=2, folded=True)
