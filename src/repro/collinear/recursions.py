"""The paper's explicit bottom-up collinear constructions.

These reproduce the exact structures of Figures 2-4: the track of every
edge is determined by the recursion (copies stack their track ranges;
each doubling step adds the connecting tracks on top), not by a packing
heuristic.  The generic engine (left-edge over the same node order)
achieves the same counts -- tests assert both -- but the explicit form
is what the figures show and what the area accounting in Sections 3-5
quotes.

Conventions
-----------
* k-ary n-cube / GHC nodes are digit tuples ``(d_{n-1}, ..., d_0)``.
* The recursion adds dimensions from *most* significant to *least*:
  the paper starts with a ring/complete graph on ``r_0``-ish digits and
  interleaves copies so the newest digit varies fastest along the line.
  Concretely, the position of node ``(d_{n-1}, ..., d_0)`` is the
  mixed-radix value with ``d_{n-1}`` most significant -- i.e. plain
  lexicographic order -- for k-ary n-cubes, and the digit-*reversed*
  value for generalized hypercubes (whose recurrence
  ``f(m+1) = r_m f(m) + |r_m^2/4|`` starts at radix ``r_0``).
* Hypercube nodes are ints; the even-dimension recursion interleaves
  four copies per step (adding two dimensions and two tracks), which is
  how ``f(n+2) = 4 f(n) + 2`` yields exactly ``floor(2N/3)``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.collinear.engine import CollinearLayout, collinear_layout
from repro.collinear.formulas import (
    complete_graph_tracks,
    hypercube_tracks,
    kary_tracks,
    mixed_radix_ghc_tracks,
)

__all__ = [
    "ring_recursive",
    "kary_recursive",
    "complete_recursive",
    "ghc_recursive",
    "hypercube_recursive",
    "ghc_construction_order",
]


def ring_recursive(k: int) -> CollinearLayout:
    """The 2-track ring layout of Section 3.1: neighbors in track 0,
    the wrap link ``0 -- k-1`` in track 1."""
    if k < 3:
        raise ValueError("a ring needs k >= 3 (k = 2 is a single edge)")
    nodes = [(i,) for i in range(k)]
    edges = [((i,), (i + 1,)) for i in range(k - 1)]
    tracks = [0] * (k - 1)
    edges.append(((0,), (k - 1,)))
    tracks.append(1)
    lay = CollinearLayout(order=nodes, edges=edges, tracks=tracks, num_tracks=2)
    lay.check()
    return lay


def kary_recursive(k: int, n: int) -> CollinearLayout:
    """The f_k(n) = 2(k^n - 1)/(k - 1) construction of Section 3.1.

    Each step stacks ``k`` copies of the previous layout (interleaved so
    the i-th nodes of consecutive copies are adjacent) and adds one
    track of neighbor links plus one track of wrap links.  Figure 2 is
    ``kary_recursive(3, 2)``.
    """
    if k < 3:
        raise ValueError(
            "k >= 3; binary k-ary n-cubes are hypercubes (Section 5.1)"
        )
    if n < 1:
        raise ValueError("n >= 1")
    lay = ring_recursive(k)
    for _ in range(n - 1):
        lay = _interleave_ring_step(lay, k)
    assert lay.num_tracks == kary_tracks(k, n)
    lay.check()
    return lay


def _interleave_ring_step(inner: CollinearLayout, k: int) -> CollinearLayout:
    """One doubling step: k interleaved copies + a ring per position group.

    Copy ``j`` holds the nodes whose *new least-significant digit* is
    ``j``; position of (inner position ``i``, copy ``j``) is ``i*k + j``.
    """
    f = inner.num_tracks
    order: list[Hashable] = []
    for v in inner.order:
        for j in range(k):
            order.append(v + (j,))
    edges: list[tuple[Hashable, Hashable]] = []
    tracks: list[int] = []
    # Copies of the inner edges: copy j uses tracks [j*f, (j+1)*f).
    for e, (u, v) in enumerate(inner.edges):
        for j in range(k):
            edges.append((u + (j,), v + (j,)))
            tracks.append(j * f + inner.tracks[e])
    # New-dimension rings within each group of k consecutive positions.
    t_adj, t_wrap = k * f, k * f + 1
    for v in inner.order:
        for j in range(k - 1):
            edges.append((v + (j,), v + (j + 1,)))
            tracks.append(t_adj)
        edges.append((v + (0,), v + (k - 1,)))
        tracks.append(t_wrap)
    return CollinearLayout(
        order=order, edges=edges, tracks=tracks, num_tracks=k * f + 2
    )


def complete_recursive(n: int) -> CollinearLayout:
    """The strictly optimal |N^2/4|-track K_N layout (Figure 3, [30]).

    Left-edge packing over the natural order is exactly optimal here:
    the cut between positions p and p+1 is (p+1)(N-1-p), maximized at
    the middle where it equals |N^2/4|.
    """
    nodes = list(range(n))
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    lay = collinear_layout(nodes, edges)
    assert lay.num_tracks == complete_graph_tracks(n)
    lay.check()
    return lay


def ghc_construction_order(radices: Sequence[int]) -> list[tuple[int, ...]]:
    """Positions used by the GHC recursion: digit-reversed mixed radix.

    ``radices`` is ``(r_{n-1}, ..., r_0)``.  The recursion starts from
    the radix-``r_0`` complete graph and interleaves, so ``d_0`` ends up
    most significant and ``d_{n-1}`` varies fastest.
    """
    out: list[tuple[int, ...]] = [()]
    for r in radices[::-1]:  # r_0 first (slowest position digit)
        out = [(d,) + t for t in out for d in range(r)]
    # Prepending at each step keeps labels canonical (d_{n-1}, ..., d_0)
    # while the *position* value reads the digits in reversed
    # significance (d_0 most significant).
    return out


def ghc_recursive(radices: Sequence[int]) -> CollinearLayout:
    """The mixed-radix generalized-hypercube construction of Section 4.1:
    f(1) = |r_0^2/4|;  f(m+1) = r_m f(m) + |r_m^2/4|."""
    rs = list(radices)
    if not rs or any(r < 2 for r in rs):
        raise ValueError("radices must all be >= 2")
    # Base: complete graph over digit d_0.
    lay = _complete_digit_layout(rs[-1])
    for r in reversed(rs[:-1]):
        lay = _interleave_complete_step(lay, r)
    assert lay.num_tracks == mixed_radix_ghc_tracks(rs)
    lay.check()
    return lay


def _complete_digit_layout(r: int) -> CollinearLayout:
    base = complete_recursive(r)
    nodes = [(i,) for i in range(r)]
    edges = [((u,), (v,)) for (u, v) in base.edges]
    return CollinearLayout(
        order=nodes, edges=edges, tracks=list(base.tracks),
        num_tracks=base.num_tracks,
    )


def _interleave_complete_step(inner: CollinearLayout, r: int) -> CollinearLayout:
    """One GHC doubling step: r interleaved copies + a K_r per group.

    The new digit is *prepended* (more significant label, fastest
    varying position).
    """
    f = inner.num_tracks
    order: list[Hashable] = []
    for v in inner.order:
        for j in range(r):
            order.append((j,) + v)
    edges: list[tuple[Hashable, Hashable]] = []
    tracks: list[int] = []
    for e, (u, v) in enumerate(inner.edges):
        for j in range(r):
            edges.append(((j,) + u, (j,) + v))
            tracks.append(j * f + inner.tracks[e])
    # K_r within each group, packed into |r^2/4| tracks; the same
    # per-group assignment replicates because groups are disjoint.
    kr = complete_recursive(r)
    base_t = r * f
    for v in inner.order:
        for e, (a, b) in enumerate(kr.edges):
            edges.append(((a,) + v, (b,) + v))
            tracks.append(base_t + kr.tracks[e])
    return CollinearLayout(
        order=order,
        edges=edges,
        tracks=tracks,
        num_tracks=r * f + (r * r) // 4,
    )


def hypercube_recursive(dim: int) -> CollinearLayout:
    """The |2N/3|-track hypercube construction (Section 5.1, Figure 4).

    Base is the 2-track 2-cube in Gray order; each step interleaves
    *four* copies (adding two dimensions) and spends two tracks on the
    per-group 4-cycles: f(n+2) = 4 f(n) + 2.  Only even dimensions are
    produced by the explicit recursion; odd dimensions get the same
    count from the generic engine under binary order (see
    :func:`repro.core.api.collinear_hypercube`).
    """
    if dim < 2 or dim % 2 != 0:
        raise ValueError(
            "explicit recursion handles even dim >= 2; use the binary-"
            "order engine for odd dimensions"
        )
    lay = _square_layout()
    for _ in range((dim - 2) // 2):
        lay = _interleave_square_step(lay)
    assert lay.num_tracks == hypercube_tracks(dim)
    lay.check()
    return lay


_GRAY4 = (0, 1, 3, 2)


def _square_layout() -> CollinearLayout:
    """The 2-cube (4-cycle) in Gray order: path in track 0, wrap in 1."""
    order = list(_GRAY4)
    edges = [(0, 1), (1, 3), (3, 2), (0, 2)]
    tracks = [0, 0, 0, 1]
    return CollinearLayout(order=order, edges=edges, tracks=tracks, num_tracks=2)


def _interleave_square_step(inner: CollinearLayout) -> CollinearLayout:
    """One f(n+2) = 4 f(n) + 2 step.

    Four copies are interleaved; within each group of four consecutive
    positions the copies appear in Gray order so the two new dimensions
    form a path (track T) plus one wrap edge (track T+1).
    """
    f = inner.num_tracks
    order: list[int] = []
    for v in inner.order:
        for c in _GRAY4:
            order.append(v * 4 + c)  # two new low-order bits = c
    edges: list[tuple[int, int]] = []
    tracks: list[int] = []
    for e, (u, v) in enumerate(inner.edges):
        for c in _GRAY4:
            edges.append((u * 4 + c, v * 4 + c))
            tracks.append(_GRAY4.index(c) * f + inner.tracks[e])
    t_path, t_wrap = 4 * f, 4 * f + 1
    for v in inner.order:
        g = [v * 4 + c for c in _GRAY4]
        edges += [(g[0], g[1]), (g[1], g[2]), (g[2], g[3])]
        tracks += [t_path, t_path, t_path]
        edges.append((g[0], g[3]))
        tracks.append(t_wrap)
    return CollinearLayout(
        order=order, edges=edges, tracks=tracks, num_tracks=4 * f + 2
    )
