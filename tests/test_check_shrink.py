"""Tests for the delta-debugging shrinker and the counterexample corpus."""

import json

import pytest

from repro.check.generate import random_connected_network
from repro.check.shrink import (
    CORPUS_FORMAT,
    iter_corpus,
    load_counterexample,
    save_counterexample,
    shrink_network,
)
from repro.check.differential import CheckResult, Violation
from repro.check.generate import CheckCase
from repro.topology import CompleteGraph, Hypercube
from repro.topology.base import build_network
import random


class TestShrinkNetwork:
    def test_edge_predicate_reduces_to_single_edge(self):
        net = CompleteGraph(6)

        def has_01(cand):
            return (0, 1) in cand.edge_multiset()

        small = shrink_network(net, has_01)
        assert small.num_nodes == 2
        assert list(small.edges) == [(0, 1)]

    def test_degree_predicate_reduces_to_star(self):
        net = Hypercube(4)

        def has_deg3(cand):
            return any(cand.degree(v) >= 3 for v in cand.nodes)

        small = shrink_network(net, has_deg3)
        assert small.num_nodes == 4
        assert small.num_edges == 3
        assert max(small.degree(v) for v in small.nodes) == 3

    def test_trivial_predicate_hits_floor(self):
        small = shrink_network(CompleteGraph(5), lambda cand: True)
        assert small.num_nodes == 2
        assert small.num_edges == 1

    def test_non_reproducing_input_unchanged(self):
        net = CompleteGraph(4)
        small = shrink_network(net, lambda cand: False)
        assert small is net

    def test_connectivity_preserved_at_every_step(self):
        net = random_connected_network(random.Random(0), max_nodes=10)
        seen = []

        def pred(cand):
            seen.append(cand)
            return True

        shrink_network(net, pred)
        assert all(c.is_connected() for c in seen)

    def test_disconnected_allowed_when_requested(self):
        net = build_network(
            [0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)], "path4"
        )

        def two_edges(cand):
            return cand.num_edges >= 2

        small = shrink_network(net, two_edges, keep_connected=False)
        assert small.num_edges == 2

    def test_result_is_one_minimal(self):
        net = CompleteGraph(5)

        def big(cand):
            return cand.num_edges >= 4

        small = shrink_network(net, big)
        assert small.num_edges == 4
        for e in small.edges:
            cand = small.without_edges([e])
            assert not (cand.num_edges >= 4 and cand.is_connected())


class TestCorpus:
    def _case(self, net):
        return CheckCase(
            case_id="seedX/case0", seed=42, kind="mutant",
            network=net, layers=(2, 4),
        )

    def _violations(self):
        return [Violation("validator-oracle", "agreement", "diverged")]

    def test_save_load_roundtrip(self, tmp_path):
        net = build_network([0, 1, 2], [(0, 1), (1, 2)], "path3")
        path = save_counterexample(
            tmp_path, net, case=self._case(net),
            violations=self._violations(), note="unit test",
        )
        assert path.name == "cx-seedX-case0-validator-oracle.json"
        case = load_counterexample(path)
        assert case.kind == "corpus"
        assert case.seed == 42
        assert case.layers == (2, 4)
        assert list(case.network.edges) == [(0, 1), (1, 2)]

    def test_doc_is_small_and_readable(self, tmp_path):
        net = build_network([0, 1], [(0, 1)], "k2")
        path = save_counterexample(
            tmp_path, net, case=self._case(net),
            violations=self._violations(),
        )
        doc = json.loads(path.read_text())
        assert doc["format"] == CORPUS_FORMAT
        assert doc["invariants"] == ["validator-oracle"]
        assert doc["network"]["edges"] == [[0, 1]]

    def test_bad_format_rejected(self, tmp_path):
        p = tmp_path / "cx-bad.json"
        p.write_text(json.dumps({"format": 99, "network": {}}))
        with pytest.raises(ValueError):
            load_counterexample(p)

    def test_iter_corpus_sorted_and_missing_dir_ok(self, tmp_path):
        assert list(iter_corpus(tmp_path / "nope")) == []
        net = build_network([0, 1], [(0, 1)], "k2")
        for cid in ("b", "a"):
            save_counterexample(
                tmp_path,
                net,
                case=CheckCase(
                    case_id=cid, seed=0, kind="mutant",
                    network=net, layers=(2,),
                ),
                violations=self._violations(),
            )
        names = [p.name for p, _ in iter_corpus(tmp_path)]
        assert names == sorted(names)
        assert len(names) == 2


class TestShrinkFailingCase:
    def test_shrinks_synthetic_collinear_failure(self, monkeypatch):
        # Break the track-count invariant only for graphs that contain
        # edge (0, 1): the shrinker should strip everything else.
        import repro.check.differential as diff

        real = diff._stage_collinear

        def biased(case, res, opts):
            real(case, res, opts)
            if (0, 1) in case.network.edge_multiset():
                res.add("collinear-tracks", "collinear", "synthetic")

        monkeypatch.setattr(diff, "_stage_collinear", biased)
        monkeypatch.setitem(diff._STAGE_FNS, "collinear", biased)
        net = CompleteGraph(5)
        case = CheckCase(
            case_id="t/c", seed=0, kind="random",
            network=net, layers=(2,),
        )
        result = diff.check_case(case, stages=("collinear",))
        assert not result.ok
        from repro.check.shrink import shrink_failing_case

        small = shrink_failing_case(result)
        assert small.num_nodes == 2
        assert list(small.edges) == [(0, 1)]
