"""Routing and message-level network simulation.

The paper's layouts exist to serve parallel-processing interconnects:
their cost (area/volume) and performance (wire length -> link delay)
are the decision criteria of its introduction.  This package closes
the loop from layout geometry to network performance:

* :mod:`repro.routing.paths` -- routing algorithms: dimension-order
  (e-cube) routing for the digit networks (hypercubes, k-ary n-cubes,
  generalized hypercubes), plus generic shortest-hop and minimum-wire
  routing over any routed layout;
* :mod:`repro.routing.traffic` -- the seeded workload zoo (uniform,
  hotspot, transpose, bit-reversal, bursty ON/OFF, adversarial
  permutation, trace replay) behind one :func:`make_workload` entry
  point, plus worker-invariant sharding;
* :mod:`repro.routing.simulator` -- the cycle-driven, store-and-forward
  per-packet simulator with per-link delays taken from the layout's
  routed wire lengths, reporting makespan, latency and congestion --
  the *oracle* the fast engine is differential-tested against;
* :mod:`repro.routing.engine` -- the batched/vectorized event engine
  (:func:`simulate_fast`), field-for-field identical to the oracle and
  an order of magnitude faster at saturation, plus saturation sweeps
  and knee detection.
"""

from repro.routing.collective import (
    binomial_broadcast,
    recursive_doubling_allgather,
    schedule_rounds,
)
from repro.routing.paths import (
    RoutingTable,
    dimension_order_route,
    layout_link_delays,
    min_wire_routes,
    shortest_hop_routes,
)
from repro.routing.engine import (
    knee_point,
    saturation_sweep,
    simulate_fast,
)
from repro.routing.simulator import SimulationResult, simulate
from repro.routing.traffic import (
    WORKLOAD_KINDS,
    adversarial_permutation,
    all_to_all,
    bit_complement,
    bit_reversal,
    bursty,
    hot_spot,
    hotspot_traffic,
    load_trace,
    make_workload,
    merge_shards,
    random_permutation,
    rate_injection,
    save_trace,
    shard_workload,
    trace_replay,
    transpose,
    uniform,
)

__all__ = [
    "dimension_order_route",
    "shortest_hop_routes",
    "min_wire_routes",
    "layout_link_delays",
    "RoutingTable",
    "simulate",
    "simulate_fast",
    "saturation_sweep",
    "knee_point",
    "SimulationResult",
    "random_permutation",
    "bit_complement",
    "transpose",
    "bit_reversal",
    "all_to_all",
    "hot_spot",
    "rate_injection",
    "uniform",
    "hotspot_traffic",
    "bursty",
    "adversarial_permutation",
    "trace_replay",
    "save_trace",
    "load_trace",
    "make_workload",
    "WORKLOAD_KINDS",
    "shard_workload",
    "merge_shards",
    "binomial_broadcast",
    "recursive_doubling_allgather",
    "schedule_rounds",
]
