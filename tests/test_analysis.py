"""Closed-form prediction functions."""

import math

import pytest

from repro.core.analysis import (
    Prediction,
    butterfly_prediction,
    ccc_prediction,
    enhanced_cube_prediction,
    folded_hypercube_prediction,
    ghc_prediction,
    hsn_prediction,
    hypercube_prediction,
    isn_prediction,
    kary_prediction,
    paper_prediction,
)


class TestFormulas:
    def test_hypercube_area(self):
        p = hypercube_prediction(8, 2)
        N = 256
        assert p.area == pytest.approx(16 * N * N / (9 * 4))
        assert p.volume == pytest.approx(p.area * 2)
        assert p.max_wire == pytest.approx(2 * N / 6)

    def test_kary_area(self):
        p = kary_prediction(4, 3, 2)
        N = 64
        assert p.area == pytest.approx(16 * N * N / (4 * 16))

    def test_ghc(self):
        p = ghc_prediction(4, 2, 4)
        N = 16
        assert p.area == pytest.approx(16 * N * N / (4 * 16))
        assert p.path_wire == pytest.approx(4 * N / 4)

    def test_butterfly_uses_total_nodes(self):
        p = butterfly_prediction(4, 2)
        N = 5 * 16
        lg = math.log2(N)
        assert p.num_nodes == N
        assert p.area == pytest.approx(4 * N * N / (4 * lg * lg))

    def test_isn_quarter_of_butterfly(self):
        b = butterfly_prediction(4, 2)
        i = isn_prediction(4, 2)
        assert i.area == pytest.approx(b.area / 4)
        assert i.max_wire == pytest.approx(b.max_wire / 2)

    def test_hsn(self):
        p = hsn_prediction(4, 2, 2)
        assert p.num_nodes == 16
        assert p.area == pytest.approx(16 * 16 / 16)

    def test_ccc(self):
        p = ccc_prediction(4, 2)
        N = 64
        lg = math.log2(N)
        assert p.area == pytest.approx(16 * N * N / (9 * 4 * lg * lg))

    def test_folded_and_enhanced_ratio(self):
        f = folded_hypercube_prediction(6, 2)
        e = enhanced_cube_prediction(6, 2)
        h = hypercube_prediction(6, 2)
        assert f.area / h.area == pytest.approx(49 / 16)
        assert e.area / h.area == pytest.approx(100 / 16)


class TestOddLayers:
    def test_odd_uses_l_squared_minus_one(self):
        even = hypercube_prediction(8, 4)
        odd = hypercube_prediction(8, 5)
        assert odd.area == pytest.approx(even.area * 16 / 24)

    def test_odd_volume_counts_all_layers(self):
        p = kary_prediction(4, 2, 3)
        assert p.volume == pytest.approx(p.area * 3)


class TestScalingClaims:
    """Claims (1)-(3) of the introduction, at the formula level."""

    @pytest.mark.parametrize("fam,args", [
        ("hypercube", (8,)), ("kary", (4, 3)), ("ghc", (4, 2)),
        ("butterfly", (4,)), ("hsn", (4, 2)), ("ccc", (5,)),
    ])
    def test_area_scales_as_l_squared(self, fam, args):
        p2 = paper_prediction(fam, *args, layers=2)
        p8 = paper_prediction(fam, *args, layers=8)
        assert p2.area / p8.area == pytest.approx(16.0)

    @pytest.mark.parametrize("fam,args", [("hypercube", (8,)), ("ghc", (4, 2))])
    def test_volume_scales_as_l(self, fam, args):
        p2 = paper_prediction(fam, *args, layers=2)
        p8 = paper_prediction(fam, *args, layers=8)
        assert p2.volume / p8.volume == pytest.approx(4.0)

    def test_wire_scales_as_l(self):
        p2 = hypercube_prediction(8, 2)
        p8 = hypercube_prediction(8, 8)
        assert p2.max_wire / p8.max_wire == pytest.approx(4.0)


class TestDispatch:
    def test_known_families(self):
        p = paper_prediction("kary", 4, 2, layers=2)
        assert isinstance(p, Prediction)
        assert p.family == "kary"

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            paper_prediction("torus-of-doom", 4, layers=2)

    def test_as_dict(self):
        d = hypercube_prediction(4, 2).as_dict()
        assert set(d) == {"family", "N", "L", "area", "volume", "max_wire", "path_wire"}
