"""E6: the abstract's optimality claims.

"The proposed layouts ... are optimal within a small constant factor
under both the Thompson model and the multilayer grid model", with
butterfly/GHC/HSN/ISN layouts "optimal within 2 + o(1) from a trivial
lower bound under the multilayer grid model".

The trivial lower bound is bisection-based: area >= (B/L)^2.  This
bench tabulates measured area / lower bound per family and L; the
per-side factor is the square root of the tabulated value.
"""

import math

from repro.core import (
    layout_complete,
    layout_ghc,
    layout_hsn,
    layout_hypercube,
    layout_kary,
    measure,
)
from repro.core.bounds import (
    area_lower_bound,
    bisection_formula,
    kernighan_lin,
    optimality_factor,
)
from repro.topology import CompleteGraph, HSN


def test_optimality_factors(benchmark, report):
    rows = []
    cases = [
        ("hypercube n=10", lambda L: layout_hypercube(10, layers=L, node_side="min"),
         bisection_formula("hypercube", 10)),
        ("4-ary 4-cube", lambda L: layout_kary(4, 4, layers=L, node_side="min"),
         bisection_formula("kary", 4, 4)),
        ("GHC(8,8)", lambda L: layout_ghc((8, 8), layers=L, node_side="min"),
         bisection_formula("ghc", 8, 2)),
        ("K16 (collinear)", lambda L: layout_complete(16, layers=L),
         bisection_formula("complete", 16)),
    ]
    for name, build, bis in cases:
        for L in (2, 4):
            m = measure(build(L))
            f = optimality_factor(m.area, bis, L)
            rows.append([
                name, L, bis, area_lower_bound(bis, L), m.area,
                f"{f:.2f}", f"{math.sqrt(f):.2f}",
            ])
            if "collinear" in name:
                # Collinear layouts keep their full width at every L:
                # the factor *grows* with L -- exactly the Section 2.2
                # argument for designing 2-D multilayer layouts instead.
                assert f < 64
            else:
                assert f < 24  # "small constant factor"
    report(
        "E6a: measured area vs trivial bisection bound (B/L)^2 "
        "(per-side factor = sqrt of area factor; the collinear K16's "
        "growing factor is Section 2.2's case against 1-D layouts)",
        ["layout", "L", "B", "lower bound", "measured", "area factor",
         "side factor"],
        rows,
    )
    benchmark(layout_hypercube, 8, layers=4, node_side="min")


def test_hsn_factor(report, benchmark):
    """HSN/HHN optimality factor, falling with size.

    The bisection of a 2-level HSN is its quotient K_r's (r/2)^2 cut
    (nucleus edges never cross a cluster-aligned bisection); KL
    certifies that value computationally at small sizes.  Hypercube
    nuclei (HHN) keep the clusters sparse -- the regime the paper's
    N^2/(4L^2) formula actually covers (a K_r nucleus makes the
    cluster strips Theta(r^2)-tall and the total area N^{2.5}; see
    DESIGN.md findings).  The factor falls monotonically toward the
    asymptotic constant as N grows."""
    from repro.topology import Hypercube

    rows = []
    factors = []
    for dim in (2, 3, 4):
        r = 1 << dim
        net = HSN(Hypercube(dim), 2)
        lay = layout_hsn(Hypercube(dim), 2)
        m = measure(lay)
        b_formula = r * r // 4
        if net.num_nodes <= 80:
            assert kernighan_lin(net) == b_formula
        f = optimality_factor(m.area, b_formula, 2)
        factors.append(f)
        rows.append([f"HHN(dim={dim})", net.num_nodes, b_formula, m.area,
                     f"{f:.1f}"])
    assert factors == sorted(factors, reverse=True)
    report(
        "E6b: HHN area vs bisection bound (B = r^2/4, KL-certified); "
        "factor falls with N toward the asymptotic constant",
        ["layout", "N", "B", "measured area", "factor"],
        rows,
    )
    benchmark(kernighan_lin, HSN(CompleteGraph(4), 2))
