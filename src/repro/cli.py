"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
layout   build a layout for a named network, print metrics, optionally
         validate and write SVG/JSON
zoo      lay out the whole network zoo at a given L and tabulate
figures  regenerate the paper's collinear figures as ASCII
predict  print the paper's closed-form predictions for a family
simulate run a traffic kernel through a network on its layout
cost     price a layout under the cost model (area, layers, yield)
fold     geometrically fold a network's Thompson layout into L layers
stack    3-D deck stacking for a torus (A x B x C of rings)

Network specs for ``layout`` are ``family:arg,arg,...``, e.g.::

    python -m repro layout hypercube:8 --layers 8 --svg cube.svg
    python -m repro layout kary:4,3 --layers 4 --validate
    python -m repro layout butterfly:4 --json bf.json
    python -m repro predict hypercube:10 --layers 8
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import print_table
from repro.core import layout_network, measure, paper_prediction
from repro.core.schemes import layout_cayley
from repro.grid.io import dump_layout
from repro.grid.validate import check_topology, validate_layout
from repro.topology import (
    HSN,
    Butterfly,
    CompleteGraph,
    CubeConnectedCycles,
    DeBruijn,
    EnhancedCube,
    FoldedHypercube,
    GeneralizedHypercube,
    Hypercube,
    IndirectSwapNetwork,
    KAryNCube,
    KAryNCubeCluster,
    Mesh,
    ReducedHypercube,
    Ring,
    ShuffleExchange,
    StarConnectedCycles,
    StarGraph,
    WrappedButterfly,
)
from repro.viz import ascii_collinear, svg_layout

__all__ = ["main", "parse_network"]

_FAMILIES = {
    "ring": lambda k: Ring(k),
    "mesh": lambda k, n: Mesh(k, n),
    "kary": lambda k, n: KAryNCube(k, n),
    "hypercube": lambda n: Hypercube(n),
    "folded-hypercube": lambda n: FoldedHypercube(n),
    "enhanced-cube": lambda n: EnhancedCube(n),
    "complete": lambda n: CompleteGraph(n),
    "ghc": lambda *rs: GeneralizedHypercube(rs),
    "butterfly": lambda m: Butterfly(m),
    "isn": lambda m: IndirectSwapNetwork(m),
    "ccc": lambda n: CubeConnectedCycles(n),
    "reduced-hypercube": lambda n: ReducedHypercube(n),
    "hsn": lambda r, l: HSN(CompleteGraph(r), l),
    "hhn": lambda d, l: HSN(Hypercube(d), l),
    "kary-cluster": lambda k, n, c: KAryNCubeCluster(k, n, c),
    "star": lambda n: StarGraph(n),
    "wrapped-butterfly": lambda m: WrappedButterfly(m),
    "shuffle-exchange": lambda n: ShuffleExchange(n),
    "de-bruijn": lambda n: DeBruijn(n),
    "scc": lambda n: StarConnectedCycles(n),
}


def parse_network(spec: str):
    """Parse ``family:arg,arg`` into a Network instance."""
    family, _, argstr = spec.partition(":")
    family = family.strip().lower()
    if family not in _FAMILIES:
        raise SystemExit(
            f"unknown network family {family!r}; known: "
            f"{', '.join(sorted(_FAMILIES))}"
        )
    try:
        args = [int(a) for a in argstr.split(",") if a.strip() != ""]
        return _FAMILIES[family](*args)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"bad arguments for {family!r}: {exc}") from exc


def _cmd_layout(args) -> int:
    net = parse_network(args.network)
    if isinstance(net, StarGraph):
        lay = layout_cayley(net, layers=args.layers)
    else:
        lay = layout_network(net, layers=args.layers)
    if args.validate:
        validate_layout(lay)
        check_topology(lay, net.edges)
        print("validation: OK (multilayer grid model + exact topology)")
    m = measure(lay)
    print_table(
        f"{net.name} under L={args.layers}",
        ["N", "links", "W", "H", "area", "volume", "max wire"],
        [[net.num_nodes, net.num_edges, m.width, m.height, m.area,
          m.volume, m.max_wire]],
    )
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(svg_layout(lay))
        print(f"SVG written to {args.svg}")
    if args.json:
        dump_layout(lay, args.json)
        print(f"JSON written to {args.json}")
    return 0


def _cmd_zoo(args) -> int:
    from repro.core.schemes import layout_generic_grid

    def dispatch(net, layers):
        if isinstance(net, (ShuffleExchange, DeBruijn)):
            return layout_generic_grid(net, layers=layers, optimize=True)
        if isinstance(net, StarGraph):
            return layout_cayley(net, layers=layers)
        return layout_network(net, layers=layers)

    zoo = [
        Ring(12), KAryNCube(4, 2), Hypercube(5), FoldedHypercube(4),
        CompleteGraph(10), GeneralizedHypercube((4, 4)), Butterfly(3),
        WrappedButterfly(3), IndirectSwapNetwork(3),
        CubeConnectedCycles(4), ReducedHypercube(4),
        HSN(CompleteGraph(4), 2), StarGraph(4), StarConnectedCycles(4),
        ShuffleExchange(5), DeBruijn(5),
    ]
    rows = []
    for net in zoo:
        lay = dispatch(net, layers=args.layers)
        validate_layout(lay)
        m = measure(lay)
        rows.append([net.name, net.num_nodes, m.area, m.volume, m.max_wire])
    print_table(
        f"network zoo at L={args.layers}",
        ["network", "N", "area", "volume", "max wire"],
        rows,
    )
    return 0


def _cmd_figures(args) -> int:
    from repro.collinear import (
        complete_recursive,
        hypercube_recursive,
        kary_recursive,
    )

    for title, lay in (
        ("Figure 2: 3-ary 2-cube (8 tracks)", kary_recursive(3, 2)),
        ("Figure 3: K9 (20 tracks)", complete_recursive(9)),
        ("Figure 4: 4-cube (10 tracks)", hypercube_recursive(4)),
    ):
        print(f"\n=== {title} ===")
        print(ascii_collinear(lay))
    return 0


def _cmd_predict(args) -> int:
    family, _, argstr = args.network.partition(":")
    params = [int(a) for a in argstr.split(",") if a.strip()]
    p = paper_prediction(family, *params, layers=args.layers)
    print_table(
        f"paper leading terms: {family}{tuple(params)} at L={args.layers}",
        ["N", "area", "volume", "max wire", "path wire"],
        [[p.num_nodes, round(p.area, 1), round(p.volume, 1),
          None if p.max_wire is None else round(p.max_wire, 1),
          None if p.path_wire is None else round(p.path_wire, 1)]],
    )
    return 0


def _cmd_simulate(args) -> int:
    from repro.routing import (
        all_to_all,
        bit_complement,
        hot_spot,
        random_permutation,
        simulate,
        transpose,
    )

    net = parse_network(args.network)
    lay = layout_network(net, layers=args.layers)
    kernels = {
        "bit-complement": bit_complement,
        "transpose": transpose,
        "random": random_permutation,
        "all-to-all": all_to_all,
        "hot-spot": hot_spot,
    }
    if args.kernel not in kernels:
        raise SystemExit(
            f"unknown kernel {args.kernel!r}; known: {', '.join(kernels)}"
        )
    msgs = kernels[args.kernel](net)
    res = simulate(
        net, msgs, layout=lay, mode=args.mode,
        message_length=args.message_length,
    )
    print_table(
        f"{net.name} L={args.layers}: {args.kernel} ({args.mode})",
        ["messages", "makespan", "avg latency", "max latency",
         "max link load"],
        [[res.messages, res.makespan, f"{res.avg_latency:.1f}",
          res.max_latency, res.max_link_load]],
    )
    return 0


def _cmd_cost(args) -> int:
    from repro.core.cost import CostModel, chip_cost

    net = parse_network(args.network)
    model = CostModel(defect_density=args.defect_density)
    rows = []
    for L in args.layer_sweep or [args.layers]:
        lay = layout_network(net, layers=L)
        c = chip_cost(lay, model)
        rows.append([L, c.area, f"{c.yield_fraction:.3f}", f"{c.total:,.1f}"])
    print_table(
        f"{net.name} chip cost",
        ["L", "area", "yield", "cost"],
        rows,
    )
    return 0


def _cmd_fold(args) -> int:
    from repro.core.folding import fold_layout

    net = parse_network(args.network)
    base = layout_network(net, layers=2)
    folded = fold_layout(base, args.layers)
    validate_layout(folded)
    mb, mf = measure(base), measure(folded)
    print_table(
        f"folding {net.name} into L={args.layers}",
        ["", "area", "volume", "max wire"],
        [
            ["Thompson", mb.area, mb.volume, mb.max_wire],
            ["folded", mf.area, mf.volume, mf.max_wire],
        ],
    )
    if args.svg:
        from repro.viz import svg_layer_stack

        with open(args.svg, "w") as fh:
            fh.write(svg_layer_stack(folded))
        print(f"exploded SVG written to {args.svg}")
    return 0


def _cmd_stack(args) -> int:
    from repro.core.threedee import layout_product_3d
    from repro.topology import Ring

    k = args.k
    lay = layout_product_3d(Ring(k), Ring(k), Ring(k), layers=args.layers)
    validate_layout(lay)
    m = measure(lay)
    two_d = measure(
        layout_network(parse_network(f"kary:{k},3"), layers=args.layers)
    )
    print_table(
        f"{k}x{k}x{k} torus, 3-D decks vs 2-D at L={args.layers}",
        ["", "area", "volume", "max wire"],
        [
            ["3-D stacked", m.area, m.volume, m.max_wire],
            ["2-D layout", two_d.area, two_d.volume, two_d.max_wire],
        ],
    )
    if args.svg:
        from repro.viz import svg_layer_stack

        with open(args.svg, "w") as fh:
            fh.write(svg_layer_stack(lay))
        print(f"exploded SVG written to {args.svg}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multilayer VLSI layout for interconnection networks "
        "(Yeh, Varvarigos & Parhami, ICPP 2000).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("layout", help="lay out one network")
    p.add_argument("network", help="family:args, e.g. hypercube:8 or kary:4,3")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.add_argument("--validate", action="store_true")
    p.add_argument("--svg", metavar="FILE")
    p.add_argument("--json", metavar="FILE")
    p.set_defaults(fn=_cmd_layout)

    p = sub.add_parser("zoo", help="lay out the network zoo")
    p.add_argument("--layers", "-L", type=int, default=4)
    p.set_defaults(fn=_cmd_zoo)

    p = sub.add_parser("figures", help="print the paper's figures (ASCII)")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("predict", help="print paper closed forms")
    p.add_argument("network", help="family:args, e.g. hypercube:10")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.set_defaults(fn=_cmd_predict)

    p = sub.add_parser("simulate", help="run a traffic kernel")
    p.add_argument("network")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.add_argument("--kernel", default="bit-complement")
    p.add_argument("--mode", default="store_forward",
                   choices=["store_forward", "cut_through"])
    p.add_argument("--message-length", type=int, default=1)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("cost", help="price a layout")
    p.add_argument("network")
    p.add_argument("--layers", "-L", type=int, default=2)
    p.add_argument("--layer-sweep", type=int, nargs="*")
    p.add_argument("--defect-density", type=float, default=0.0)
    p.set_defaults(fn=_cmd_cost)

    p = sub.add_parser("fold", help="fold a Thompson layout into L layers")
    p.add_argument("network")
    p.add_argument("--layers", "-L", type=int, default=4)
    p.add_argument("--svg", metavar="FILE")
    p.set_defaults(fn=_cmd_fold)

    p = sub.add_parser("stack", help="3-D deck stacking for a k^3 torus")
    p.add_argument("k", type=int)
    p.add_argument("--layers", "-L", type=int, default=8)
    p.add_argument("--svg", metavar="FILE")
    p.set_defaults(fn=_cmd_stack)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
