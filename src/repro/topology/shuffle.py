"""Shuffle-exchange and de Bruijn networks.

The paper's introduction anchors the whole VLSI-layout literature on
Leighton's shuffle-exchange work (ref. [17]); these are the remaining
classical layout subjects, included so the generic machinery (collinear
engine, generic-grid fallback, cutwidth DP, lower bounds) can be
exercised on the networks the field's lower-bound results were
developed for.

* :class:`ShuffleExchange` SE(n): nodes are n-bit strings; *exchange*
  edges flip the low bit; *shuffle* edges rotate left.
* :class:`DeBruijn` DB(n): node w links to 2w mod 2^n and 2w+1 mod 2^n
  (the shuffle-exchange's "collapsed" sibling).

Both have Theta(N^2 / log^2 N) layout area (like the butterfly/CCC
class the paper treats in Sections 4-5); no specialized layout is
claimed here -- they route through the generic fallback.
"""

from __future__ import annotations

from typing import Sequence

from repro.topology.base import Edge, Network, Node

__all__ = ["ShuffleExchange", "DeBruijn"]


class ShuffleExchange(Network):
    """SE(n) on 2^n nodes: exchange (w ^ 1) and shuffle (rotate-left)."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("n >= 2")
        self.n = n
        self.name = f"shuffle-exchange({n})"

    def _build_nodes(self) -> Sequence[Node]:
        return list(range(1 << self.n))

    def _rotl(self, w: int) -> int:
        n = self.n
        return ((w << 1) | (w >> (n - 1))) & ((1 << n) - 1)

    def _build_edges(self) -> Sequence[Edge]:
        edges: set[tuple[int, int]] = set()
        for w in range(1 << self.n):
            x = w ^ 1  # exchange
            edges.add((min(w, x), max(w, x)))
            s = self._rotl(w)  # shuffle
            if s != w:
                edges.add((min(w, s), max(w, s)))
        return sorted(edges)


class DeBruijn(Network):
    """DB(n) on 2^n nodes: w ~ (2w mod N) and (2w+1 mod N)."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("n >= 2")
        self.n = n
        self.name = f"de-bruijn({n})"

    def _build_nodes(self) -> Sequence[Node]:
        return list(range(1 << self.n))

    def _build_edges(self) -> Sequence[Edge]:
        size = 1 << self.n
        edges: set[tuple[int, int]] = set()
        for w in range(size):
            for b in (0, 1):
                v = (2 * w + b) % size
                if v != w:
                    edges.add((min(w, v), max(w, v)))
        return sorted(edges)
